// Scatter-gather wire payload: an ordered list of segments, each either
// *owned* header bytes (scalar prologue, varint type tags, field scalars)
// or a *borrowed* span pointing straight into an application heap payload
// (an inline primitive-array row).  The serializer appends segments; the
// framing layer walks them in order; only the NIC boundary (SimTransport's
// physical encode, LoopbackTransport's delivery copy) concatenates — so
// the per-row memcpy disappears from the send path.
//
// Lifetime rules
// --------------
// Borrowed spans alias memory the application still owns and may mutate
// or free once the invoke returns.  Before a gathered payload escapes the
// serializing call (session queue, reply cache, ARQ retransmit, fault-plan
// reordering), it must be *sealed*:
//  * segments under `pin_copy_threshold` are copied into owned storage
//    (copy-on-seal: the iovec entry is cheaper to fold than to pin);
//  * larger segments are pinned — snapshotted once into a refcounted
//    block shared by every Frame/Message copy that aliases this buffer
//    (Message holds GatherBuffer by shared_ptr, so the reply cache, ARQ
//    retransmits and duplicate/reorder fault copies all see one image).
// After seal() the buffer is immutable: retransmitting a sealed frame
// yields bytes identical to the first transmission even if the
// application mutated the borrowed array in between.
//
// Cost-model note: the *virtual* cost of a borrowed segment is charged as
// per-segment gather overhead (CostModel::gather_segment_ns), not as a
// byte copy — the model is an iovec-capable NIC that DMAs from pinned
// application pages.  The physical snapshot seal() takes is a simulation
// artifact (the sim heap has no page pinning) and is deliberately not
// charged.  See docs/COSTMODEL.md, "Zero-copy scatter-gather send".
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace rmiopt::support {

class GatherBuffer {
 public:
  explicit GatherBuffer(std::size_t min_borrow_bytes = 64,
                        std::size_t pin_copy_threshold = 256)
      : min_borrow_bytes_(min_borrow_bytes),
        pin_copy_threshold_(pin_copy_threshold) {}

  // ---- writing (owned segments) ------------------------------------------
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto& chunk = owned_tail();
    const std::size_t old = chunk.size();
    chunk.resize(old + sizeof(T));
    std::memcpy(chunk.data() + old, &value, sizeof(T));
    total_ += sizeof(T);
  }

  void put_u8(std::uint8_t v) { put(v); }
  void put_i32(std::int32_t v) { put(v); }
  void put_u32(std::uint32_t v) { put(v); }
  void put_i64(std::int64_t v) { put(v); }
  void put_f64(double v) { put(v); }

  void put_varint(std::uint64_t v) {
    auto& chunk = owned_tail();
    while (v >= 0x80) {
      chunk.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
      ++total_;
    }
    chunk.push_back(static_cast<std::uint8_t>(v));
    ++total_;
  }

  void put_bytes(const void* data, std::size_t len) {
    if (len == 0) return;  // empty spans may carry data() == nullptr
    auto& chunk = owned_tail();
    const std::size_t old = chunk.size();
    chunk.resize(old + len);
    std::memcpy(chunk.data() + old, data, len);
    total_ += len;
  }

  void put_string(std::string_view s) {
    put_varint(s.size());
    put_bytes(s.data(), s.size());
  }

  // ---- borrowing ----------------------------------------------------------
  // Record a borrowed span without copying.  Returns true when the span was
  // borrowed; spans under `min_borrow_bytes` fall back to an owned copy
  // (the iovec entry would cost more than the memcpy it saves) and return
  // false so the caller charges them as a copy.
  bool borrow(const void* data, std::size_t len) {
    RMIOPT_CHECK(!sealed_, "GatherBuffer: borrow after seal");
    if (len == 0) return false;
    if (len < min_borrow_bytes_) {
      put_bytes(data, len);
      return false;
    }
    Segment s;
    s.borrowed = true;
    s.data = static_cast<const std::uint8_t*>(data);
    s.size = len;
    segs_.push_back(std::move(s));
    total_ += len;
    borrowed_bytes_ += len;
    return true;
  }

  // ---- sealing ------------------------------------------------------------
  // Make the buffer immutable and independent of application memory.
  // Idempotent; cheap when nothing was borrowed.
  void seal() {
    if (sealed_) return;
    sealed_ = true;
    for (auto& s : segs_) {
      if (!s.borrowed) continue;
      if (s.size < pin_copy_threshold_) {
        // Copy-on-seal: fold the bytes into a private owned block and drop
        // the alias.  Order is preserved — the segment entry stays put.
        s.owned.assign(s.data, s.data + s.size);
        s.data = nullptr;
        s.borrowed = false;
      } else {
        // Refcount-pin: one snapshot, shared (via the shared_ptr that
        // carries this whole buffer) by every copy of the message.
        s.pin = std::make_shared<std::vector<std::uint8_t>>(s.data,
                                                            s.data + s.size);
        s.data = s.pin->data();
        pinned_bytes_ += s.size;
      }
    }
  }
  bool sealed() const { return sealed_; }

  // ---- reading ------------------------------------------------------------
  std::size_t size() const { return total_; }
  std::uint64_t bytes_borrowed() const { return borrowed_bytes_; }
  std::uint64_t bytes_pinned() const { return pinned_bytes_; }

  std::size_t segment_count() const {
    std::size_t n = 0;
    for (const auto& s : segs_) n += !view_of(s).empty();
    return n;
  }

  // Walk segments in payload order: fn(const std::uint8_t* data, size_t n).
  template <typename Fn>
  void for_each_segment(Fn&& fn) const {
    for (const auto& s : segs_) {
      const auto v = view_of(s);
      if (!v.empty()) fn(v.data, v.size);
    }
  }

  // Contiguous materialization — the NIC-boundary concatenation.
  std::vector<std::uint8_t> gather() const {
    std::vector<std::uint8_t> out;
    out.reserve(total_);
    for_each_segment([&](const std::uint8_t* d, std::size_t n) {
      out.insert(out.end(), d, d + n);
    });
    return out;
  }

 private:
  struct Segment {
    bool borrowed = false;            // still aliasing application memory
    const std::uint8_t* data = nullptr;  // borrowed (or pinned) span
    std::size_t size = 0;
    std::vector<std::uint8_t> owned;  // owned bytes (headers / copy-on-seal)
    std::shared_ptr<std::vector<std::uint8_t>> pin;  // seal() snapshot
  };

  struct View {
    const std::uint8_t* data;
    std::size_t size;
    bool empty() const { return size == 0; }
  };
  static View view_of(const Segment& s) {
    if (s.data != nullptr) return {s.data, s.size};
    return {s.owned.data(), s.owned.size()};
  }

  // The trailing owned chunk put_* appends to; a borrow closes it so the
  // next put opens a fresh one after the borrowed span.
  std::vector<std::uint8_t>& owned_tail() {
    RMIOPT_CHECK(!sealed_, "GatherBuffer: write after seal");
    if (segs_.empty() || segs_.back().borrowed || segs_.back().pin) {
      segs_.emplace_back();
    }
    return segs_.back().owned;
  }

  std::vector<Segment> segs_;
  std::size_t total_ = 0;
  std::uint64_t borrowed_bytes_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::size_t min_borrow_bytes_;
  std::size_t pin_copy_threshold_;
  bool sealed_ = false;
};

}  // namespace rmiopt::support
