// Virtual time for the simulated cluster.
//
// The paper measured wall-clock seconds on 1 GHz Pentium III nodes with a
// Myrinet/GM network.  We cannot reproduce that hardware, so every machine
// in the simulated cluster carries a virtual clock measured in integer
// nanoseconds; the network model and the serializer cost model charge this
// clock.  Integer nanoseconds keep accumulation exact and deterministic
// across runs (no floating point drift).
#pragma once

#include <cstdint>
#include <string>

namespace rmiopt {

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t u) { return SimTime(u * 1000); }
  static constexpr SimTime millis(std::int64_t m) {
    return SimTime(m * 1'000'000);
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime(s * 1'000'000'000);
  }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const {
    return SimTime(ns_ * k);
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

inline SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }

}  // namespace rmiopt
