// Plain-text table formatting for the benchmark harness.
//
// Every bench binary prints rows in the same layout as the paper's tables
// ("Compiler Optimization | seconds | gain over 'class'"); this helper
// right-pads columns so the output is directly comparable to the paper.
#pragma once

#include <string>
#include <vector>

namespace rmiopt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Renders with a header separator line, columns padded to widest cell.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `decimals` fraction digits (e.g. 13.0 -> "13.0").
std::string fmt_fixed(double value, int decimals);

// Formats a gain percentage the way the paper prints it ("13.0%").
std::string fmt_gain(double baseline, double value);

}  // namespace rmiopt
