#include "support/sim_time.hpp"

#include <cstdio>

namespace rmiopt {

std::string SimTime::to_string() const {
  char buf[64];
  if (ns_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", as_seconds());
  } else if (ns_ >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms",
                  static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fus", as_micros());
  }
  return buf;
}

}  // namespace rmiopt
