#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace rmiopt {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  RMIOPT_CHECK(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_gain(double baseline, double value) {
  if (baseline <= 0.0) return "n/a";
  const double gain = (baseline - value) / baseline * 100.0;
  return fmt_fixed(gain, 1) + "%";
}

}  // namespace rmiopt
