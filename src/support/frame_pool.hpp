// Per-machine freelist of refcounted frame buffers for the zero-copy
// receive path.
//
// When `CostModel::zero_copy_receive` is on, the transport materializes
// each physical frame image into a pooled Block instead of a fresh
// per-message std::vector, and every Message decoded out of the frame
// carries a ByteBuffer *view* pinning that block (see
// support/bytebuffer.hpp).  The block returns to the freelist only when
// the last pin drops — which may be long after delivery if the reader
// borrowed primitive-array spans into application objects
// (objmodel borrowed storage, COW on mutation).
//
// The pool models NIC receive-ring recycling: a bounded freelist of
// reusable buffers, a hit when delivery finds one free, a miss when the
// ring is dry (every live frame still pinned) and a new buffer must be
// allocated.  Hit/miss counters surface through NetworkStats so the
// ablation bench can assert real allocation traffic drops with the knob
// on.  The counters (and the pool itself) are only ever touched when the
// knob is on, preserving knob-off byte-identity of the bench tables.
//
// Thread safety: acquire/release take the core mutex (delivery happens on
// sender threads; release can happen on any machine thread that drops the
// last borrowing object).  The deleter holds a shared_ptr to the core, so
// blocks released after the pool (machine) is destroyed are simply freed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rmiopt::support {

class FramePool {
 public:
  struct Block {
    std::vector<std::uint8_t> bytes;
  };
  using BlockRef = std::shared_ptr<Block>;

  struct Counters {
    std::uint64_t hits = 0;    // acquire served from the freelist
    std::uint64_t misses = 0;  // freelist dry: fresh allocation
  };

  explicit FramePool(std::size_t max_free = 16)
      : core_(std::make_shared<Core>(max_free)) {}

  // Non-copyable, non-movable: Machine owns exactly one, and outstanding
  // deleters hold shared_ptrs into core_.
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // Returns an empty block (bytes cleared, capacity >= reserve_bytes when
  // recycled capacity allows).  The BlockRef's deleter returns the block
  // to this pool's freelist; copies of the ref pin the block until the
  // last one drops.
  BlockRef acquire(std::size_t reserve_bytes) {
    std::unique_ptr<Block> block;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      if (!core_->free.empty()) {
        block = std::move(core_->free.back());
        core_->free.pop_back();
        ++core_->counters.hits;
      } else {
        ++core_->counters.misses;
      }
    }
    if (!block) block = std::make_unique<Block>();
    block->bytes.clear();
    block->bytes.reserve(reserve_bytes);
    return BlockRef(block.release(), Deleter{core_});
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->counters;
  }

  std::size_t free_blocks() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->free.size();
  }

 private:
  struct Core {
    explicit Core(std::size_t mf) : max_free(mf) {}
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Block>> free;
    Counters counters;
    std::size_t max_free;
  };

  struct Deleter {
    std::shared_ptr<Core> core;
    void operator()(Block* block) const {
      std::unique_ptr<Block> owned(block);
      std::lock_guard<std::mutex> lock(core->mu);
      if (core->free.size() < core->max_free)
        core->free.push_back(std::move(owned));
      // else: ring overfull, let the unique_ptr free it.
    }
  };

  std::shared_ptr<Core> core_;
};

}  // namespace rmiopt::support
