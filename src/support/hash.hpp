// Small hashing utilities shared by the cycle table, the wire protocol and
// the web-server application (URL hashing mirrors Java's String.hashCode).
#pragma once

#include <cstdint>
#include <string_view>

namespace rmiopt {

// FNV-1a 64-bit, used for structural hashing of byte ranges.
inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(s.data(), s.size());
}

// Pointer mixing (Fibonacci hashing); used by the open-addressing cycle
// table where keys are object addresses.
inline std::uint64_t mix_pointer(const void* p) {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  return static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull;
}

// Java-compatible String.hashCode(); the paper's web server routes requests
// with `server[url.hashCode()]`, so we reproduce the same function.
inline std::int32_t java_string_hash(std::string_view s) {
  std::uint32_t h = 0;  // unsigned to make the wraparound well-defined
  for (unsigned char c : s) h = 31u * h + c;
  return static_cast<std::int32_t>(h);
}

}  // namespace rmiopt
