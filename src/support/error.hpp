// Error handling for the rmiopt library.
//
// The library throws `rmiopt::Error` (a std::runtime_error) for programmer
// errors and protocol violations.  `RMIOPT_CHECK` is used for internal
// invariants that indicate a bug if violated; it is always on (the checks
// guard correctness of the serializers, not hot inner loops).
//
// Two typed subclasses separate *recoverable* failures on
// externally-derived data from programmer errors, so callers can fail
// closed instead of aborting:
//  * DecodeError — a byte image (frame, payload) is truncated, corrupted
//    or otherwise malformed.  Thrown by wire::decode_frame and the
//    deserializers; a receiver rejects the input and keeps running.
//  * ProtocolError — a peer misbehaved at the protocol level (a link gave
//    up after exhausting retransmits, a message violates the session
//    state machine).  The reliability layer converts these into dropped
//    traffic, counters, or rmi::RmiTimeout at the call boundary.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmiopt {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed or corrupted externally-derived bytes: reject, don't abort.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

// A peer or link violated the protocol (e.g. retransmits exhausted).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

// The failure detector declared `machine` dead: traffic to (or from) it
// fails immediately instead of waiting out the retransmit budget, which
// bounds failover latency by detection time rather than by the ARQ's
// exponential backoff.  The RMI layer converts this into the typed
// rmi::MachineDown at the call boundary.
class MachineDeadError : public ProtocolError {
 public:
  MachineDeadError(std::uint16_t machine, const std::string& what)
      : ProtocolError(what), machine_(machine) {}
  std::uint16_t machine() const { return machine_; }

 private:
  std::uint16_t machine_;
};

// A compiled artifact was asked for something the compiler never produced
// (e.g. a call-site tag that came from app config wiring but matches no
// RemoteCall in the module).  Recoverable: the caller can reject the
// configuration instead of aborting.
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

#define RMIOPT_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::rmiopt::fail(std::string("check failed: ") + (msg) + " at " + \
                     __FILE__ + ":" + std::to_string(__LINE__));      \
    }                                                                 \
  } while (0)

}  // namespace rmiopt
