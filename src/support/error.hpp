// Error handling for the rmiopt library.
//
// The library throws `rmiopt::Error` (a std::runtime_error) for programmer
// errors and protocol violations.  `RMIOPT_CHECK` is used for internal
// invariants that indicate a bug if violated; it is always on (the checks
// guard correctness of the serializers, not hot inner loops).
#pragma once

#include <stdexcept>
#include <string>

namespace rmiopt {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

#define RMIOPT_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::rmiopt::fail(std::string("check failed: ") + (msg) + " at " + \
                     __FILE__ + ":" + std::to_string(__LINE__));      \
    }                                                                 \
  } while (0)

}  // namespace rmiopt
