// Deterministic random number generation (SplitMix64).
//
// All workload generators take an explicit seed so that every benchmark run
// and every test is reproducible bit-for-bit; nothing in the library calls
// a global RNG.
#pragma once

#include <cstdint>

namespace rmiopt {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::int64_t next_i64() { return static_cast<std::int64_t>(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace rmiopt
