// Class descriptors and the type registry.
//
// A `ClassDescriptor` plays the role of Java class metadata: it lists the
// fields (with computed payload offsets) that the introspective serializer
// walks at runtime, and that the compiler walks at compile time when it
// generates class-specific or call-site-specific marshal plans.
//
// Arrays are descriptor-represented classes too: `register_prim_array`
// creates `[D`, nesting creates `[[D`, and `register_ref_array` creates
// `[LFoo;`.  Strings are byte arrays with a dedicated descriptor so the
// web server's URL/page payloads serialize as bulk bytes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "objmodel/type.hpp"

namespace rmiopt::om {

struct FieldDescriptor {
  std::string name;
  TypeKind kind = TypeKind::Int;
  // Static type of the referenced object when kind == Ref (may itself be an
  // array class).  kNoClass means "java.lang.Object" — statically unknown.
  ClassId ref_class = kNoClass;
  // Byte offset into the object payload, assigned by the registry.
  std::uint32_t offset = 0;
};

struct ClassDescriptor {
  ClassId id = kNoClass;
  std::string name;
  ClassId super = kNoClass;
  // Flattened field list: inherited fields first, then own fields.
  std::vector<FieldDescriptor> fields;
  std::uint32_t instance_size = 0;  // payload bytes for non-arrays

  bool is_array = false;
  TypeKind elem_kind = TypeKind::Int;  // valid when is_array
  ClassId elem_class = kNoClass;       // for ref-element arrays
  bool is_string = false;              // byte array carrying text
  // declare_class leaves this false; define_fields completes the class.
  bool is_defined = false;

  bool has_ref_fields() const {
    for (const auto& f : fields) {
      if (f.kind == TypeKind::Ref) return true;
    }
    return false;
  }
};

// Describes one field to be added to a class under construction.
struct FieldSpec {
  std::string name;
  TypeKind kind;
  ClassId ref_class = kNoClass;
};

class TypeRegistry {
 public:
  TypeRegistry();
  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // Defines a new class; fields of the superclass are inherited (flattened
  // in front).  Throws if the name is taken or the super id is unknown.
  ClassId define_class(const std::string& name,
                       const std::vector<FieldSpec>& fields,
                       ClassId super = kNoClass);

  // Two-phase definition for self-referential classes (a linked list's
  // `Next` field needs the class's own id): declare first, then fill in
  // the fields exactly once.
  ClassId declare_class(const std::string& name);
  void define_fields(ClassId id, const std::vector<FieldSpec>& fields,
                     ClassId super = kNoClass);

  // Array classes are interned: registering `[D` twice yields the same id.
  ClassId register_prim_array(TypeKind elem);
  ClassId register_ref_array(ClassId elem_class);

  ClassId string_class() const { return string_class_; }

  const ClassDescriptor& get(ClassId id) const;
  const ClassDescriptor* find_by_name(const std::string& name) const;
  bool exists(ClassId id) const { return id > 0 && id < classes_.size(); }
  std::size_t class_count() const { return classes_.size() - 1; }

  // True if `maybe_sub` equals `super` or transitively inherits from it.
  bool is_subclass_of(ClassId maybe_sub, ClassId super) const;

 private:
  ClassId intern(ClassDescriptor desc);

  // Index 0 is an unused sentinel so that ClassId 0 == kNoClass.
  std::vector<std::unique_ptr<ClassDescriptor>> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
  ClassId string_class_ = kNoClass;
};

}  // namespace rmiopt::om
