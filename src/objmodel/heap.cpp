#include "objmodel/heap.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace rmiopt::om {

std::size_t Object::payload_size() const {
  if (cls_->is_array) {
    return static_cast<std::size_t>(length()) * size_of(cls_->elem_kind);
  }
  return cls_->instance_size;
}

void Object::detach() {
  BorrowedStorage* s = borrowed_storage();
  if (s->pin == nullptr) return;  // already detached (or rebound to owned)
  s->owned.assign(s->data, s->data + payload_size());
  s->data = s->owned.data();
  s->pin.reset();
}

void rebind_borrowed(Object* obj, const std::uint8_t* data,
                     std::shared_ptr<void> pin) {
  RMIOPT_CHECK(obj->has_borrowed_storage(),
               "rebind_borrowed on inline-storage object");
  BorrowedStorage* s = obj->borrowed_storage();
  s->owned.clear();
  s->data = data;
  s->pin = std::move(pin);  // drops the previous frame's refcount
}

ObjRef Heap::raw_alloc(const ClassDescriptor& cls, std::uint32_t length,
                       std::size_t payload) {
  const std::size_t total = sizeof(Object) + payload;
  void* mem = ::operator new(total, std::align_val_t{16});
  std::memset(mem, 0, total);
  auto* obj = new (mem) Object(&cls, length);
  stats_.objects_allocated.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_allocated.fetch_add(total, std::memory_order_relaxed);
  return obj;
}

ObjRef Heap::alloc(const ClassDescriptor& cls) {
  RMIOPT_CHECK(!cls.is_array, "use alloc_array for array classes");
  return raw_alloc(cls, 0, cls.instance_size);
}

ObjRef Heap::alloc_array(const ClassDescriptor& cls, std::uint32_t length) {
  RMIOPT_CHECK(cls.is_array, "alloc_array requires an array class");
  return raw_alloc(cls, length,
                   static_cast<std::size_t>(length) * size_of(cls.elem_kind));
}

ObjRef Heap::alloc_array_borrowed(const ClassDescriptor& cls,
                                  std::uint32_t length,
                                  const std::uint8_t* data,
                                  std::shared_ptr<void> pin) {
  RMIOPT_CHECK(cls.is_array && cls.elem_kind != TypeKind::Ref,
               "alloc_array_borrowed requires a primitive array class");
  RMIOPT_CHECK((length & Object::kBorrowedBit) == 0, "array length overflow");
  // The payload area holds only the control-block pointer; the elements
  // stay in the pinned frame until a mutable access detaches them.
  ObjRef obj = raw_alloc(cls, length, sizeof(BorrowedStorage*));
  auto* storage = new BorrowedStorage;
  storage->data = data;
  storage->pin = std::move(pin);
  std::memcpy(reinterpret_cast<std::uint8_t*>(obj + 1), &storage,
              sizeof(storage));
  obj->length_ |= Object::kBorrowedBit;
  return obj;
}

ObjRef Heap::alloc_string(std::string_view text) {
  ObjRef s = alloc_array(types_.get(types_.string_class()),
                         static_cast<std::uint32_t>(text.size()));
  std::memcpy(s->payload(), text.data(), text.size());
  return s;
}

void Heap::free(ObjRef obj) {
  if (obj == nullptr) return;
  std::size_t total;
  if (obj->has_borrowed_storage()) {
    // Symmetric with alloc_array_borrowed: only the header + control-block
    // pointer were charged.  Deleting the control block drops the frame
    // pin (if still held), letting the pooled buffer recycle.
    delete obj->borrowed_storage();
    total = sizeof(Object) + sizeof(BorrowedStorage*);
  } else {
    total = sizeof(Object) + obj->payload_size();
  }
  obj->~Object();
  ::operator delete(static_cast<void*>(obj), std::align_val_t{16});
  stats_.objects_freed.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_freed.fetch_add(total, std::memory_order_relaxed);
}

namespace {

// Pushes all referents of `obj` onto `out`.
void collect_referents(const ObjRef obj, std::vector<ObjRef>& out) {
  const ClassDescriptor& cls = obj->cls();
  if (cls.is_array) {
    if (cls.elem_kind == TypeKind::Ref) {
      for (std::uint32_t i = 0; i < obj->length(); ++i) {
        if (ObjRef r = obj->get_elem_ref(i)) out.push_back(r);
      }
    }
    return;
  }
  for (const auto& f : cls.fields) {
    if (f.kind != TypeKind::Ref) continue;
    if (ObjRef r = obj->get_ref(f)) out.push_back(r);
  }
}

}  // namespace

void Heap::free_graph(ObjRef obj) {
  if (obj == nullptr) return;
  std::unordered_set<ObjRef> visited;
  std::vector<ObjRef> stack{obj};
  std::vector<ObjRef> order;
  while (!stack.empty()) {
    ObjRef o = stack.back();
    stack.pop_back();
    if (!visited.insert(o).second) continue;
    order.push_back(o);
    collect_referents(o, stack);
  }
  for (ObjRef o : order) free(o);
}

bool deep_equals(const ObjRef a, const ObjRef b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;

  std::unordered_map<ObjRef, ObjRef> matched;
  std::vector<std::pair<ObjRef, ObjRef>> stack{{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (x == nullptr || y == nullptr) {
      if (x != y) return false;
      continue;
    }
    if (auto it = matched.find(x); it != matched.end()) {
      if (it->second != y) return false;
      continue;
    }
    matched.emplace(x, y);

    const ClassDescriptor& cx = x->cls();
    if (cx.id != y->class_id()) return false;
    if (cx.is_array) {
      if (x->length() != y->length()) return false;
      if (cx.elem_kind == TypeKind::Ref) {
        for (std::uint32_t i = 0; i < x->length(); ++i) {
          stack.emplace_back(x->get_elem_ref(i), y->get_elem_ref(i));
        }
      } else if (std::memcmp(std::as_const(*x).payload(),
                             std::as_const(*y).payload(),
                             x->payload_size()) != 0) {
        // const reads: comparing must never trigger a COW detach
        return false;
      }
      continue;
    }
    for (const auto& f : cx.fields) {
      if (f.kind == TypeKind::Ref) {
        stack.emplace_back(x->get_ref(f), y->get_ref(f));
      } else {
        const auto sz = size_of(f.kind);
        if (std::memcmp(std::as_const(*x).payload() + f.offset,
                        std::as_const(*y).payload() + f.offset, sz) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

ObjRef deep_clone(Heap& heap, const ObjRef obj) {
  if (obj == nullptr) return nullptr;

  std::unordered_map<ObjRef, ObjRef> copies;
  // First pass: allocate a shallow copy for every node (preserves cycles).
  std::vector<ObjRef> order;
  {
    std::unordered_set<ObjRef> visited;
    std::vector<ObjRef> stack{obj};
    while (!stack.empty()) {
      ObjRef o = stack.back();
      stack.pop_back();
      if (!visited.insert(o).second) continue;
      order.push_back(o);
      collect_referents(o, stack);
    }
  }
  for (ObjRef o : order) {
    const ClassDescriptor& cls = o->cls();
    ObjRef copy = cls.is_array ? heap.alloc_array(cls, o->length())
                               : heap.alloc(cls);
    std::memcpy(copy->payload(), std::as_const(*o).payload(),
                o->payload_size());
    copies.emplace(o, copy);
  }
  // Second pass: rewrite reference slots to point at the copies.
  for (ObjRef o : order) {
    ObjRef copy = copies.at(o);
    const ClassDescriptor& cls = o->cls();
    if (cls.is_array) {
      if (cls.elem_kind == TypeKind::Ref) {
        for (std::uint32_t i = 0; i < o->length(); ++i) {
          ObjRef r = o->get_elem_ref(i);
          copy->set_elem_ref(i, r ? copies.at(r) : nullptr);
        }
      }
      continue;
    }
    for (const auto& f : cls.fields) {
      if (f.kind != TypeKind::Ref) continue;
      ObjRef r = o->get_ref(f);
      copy->set_ref(f, r ? copies.at(r) : nullptr);
    }
  }
  return copies.at(obj);
}

void collect_graph(const ObjRef obj, std::unordered_set<Object*>& out) {
  if (obj == nullptr) return;
  std::vector<ObjRef> stack{obj};
  while (!stack.empty()) {
    ObjRef o = stack.back();
    stack.pop_back();
    if (!out.insert(o).second) continue;
    collect_referents(o, stack);
  }
}

std::size_t graph_object_count(const ObjRef obj) {
  std::unordered_set<Object*> visited;
  collect_graph(obj, visited);
  return visited.size();
}

GraphExtent graph_extent(const ObjRef obj) {
  std::unordered_set<Object*> visited;
  collect_graph(obj, visited);
  GraphExtent ext;
  ext.objects = visited.size();
  for (Object* o : visited) ext.bytes += sizeof(Object) + o->payload_size();
  return ext;
}

}  // namespace rmiopt::om
