// Primitive type kinds of the runtime object model.
//
// The object model mirrors the Java type system the paper's compiler works
// on: eight primitive kinds plus references.  Arrays are modelled as
// classes (see class_desc.hpp), like Java's `[D` / `[[D` / `[LFoo;`.
#pragma once

#include <cstdint>
#include <string_view>

namespace rmiopt::om {

enum class TypeKind : std::uint8_t {
  Bool,
  Byte,
  Short,
  Int,
  Long,
  Float,
  Double,
  Ref,
};

constexpr std::size_t size_of(TypeKind k) {
  switch (k) {
    case TypeKind::Bool:
    case TypeKind::Byte:
      return 1;
    case TypeKind::Short:
      return 2;
    case TypeKind::Int:
    case TypeKind::Float:
      return 4;
    case TypeKind::Long:
    case TypeKind::Double:
      return 8;
    case TypeKind::Ref:
      return sizeof(void*);
  }
  return 0;
}

constexpr std::string_view name_of(TypeKind k) {
  switch (k) {
    case TypeKind::Bool:
      return "bool";
    case TypeKind::Byte:
      return "byte";
    case TypeKind::Short:
      return "short";
    case TypeKind::Int:
      return "int";
    case TypeKind::Long:
      return "long";
    case TypeKind::Float:
      return "float";
    case TypeKind::Double:
      return "double";
    case TypeKind::Ref:
      return "ref";
  }
  return "?";
}

// Dense class identifier; 0 is reserved ("no class").  Class ids are what
// the class-specific wire protocol sends per object (a single integer, as
// in Manta-JavaParty); the call-site-specific protocol sends none.
using ClassId = std::uint32_t;
inline constexpr ClassId kNoClass = 0;

}  // namespace rmiopt::om
