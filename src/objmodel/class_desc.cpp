#include "objmodel/class_desc.hpp"

#include "support/error.hpp"

namespace rmiopt::om {

namespace {

std::uint32_t align_up(std::uint32_t off, std::uint32_t align) {
  return (off + align - 1) & ~(align - 1);
}

}  // namespace

TypeRegistry::TypeRegistry() {
  classes_.push_back(nullptr);  // sentinel for kNoClass

  // The string class: a byte array with text semantics.
  ClassDescriptor s;
  s.name = "java/lang/String";
  s.is_array = true;
  s.elem_kind = TypeKind::Byte;
  s.is_string = true;
  string_class_ = intern(std::move(s));
}

ClassId TypeRegistry::intern(ClassDescriptor desc) {
  RMIOPT_CHECK(by_name_.find(desc.name) == by_name_.end(),
               "duplicate class name: " + desc.name);
  desc.id = static_cast<ClassId>(classes_.size());
  by_name_.emplace(desc.name, desc.id);
  classes_.push_back(std::make_unique<ClassDescriptor>(std::move(desc)));
  return classes_.back()->id;
}

ClassId TypeRegistry::define_class(const std::string& name,
                                   const std::vector<FieldSpec>& fields,
                                   ClassId super) {
  const ClassId id = declare_class(name);
  define_fields(id, fields, super);
  return id;
}

ClassId TypeRegistry::declare_class(const std::string& name) {
  ClassDescriptor desc;
  desc.name = name;
  return intern(std::move(desc));
}

void TypeRegistry::define_fields(ClassId id,
                                 const std::vector<FieldSpec>& fields,
                                 ClassId super) {
  ClassDescriptor& desc = *classes_.at(id);
  RMIOPT_CHECK(!desc.is_array, "cannot define fields on an array class");
  RMIOPT_CHECK(!desc.is_defined, "class " + desc.name + " already defined");
  desc.is_defined = true;
  desc.super = super;
  std::uint32_t offset = 0;
  if (super != kNoClass) {
    const ClassDescriptor& sup = get(super);
    RMIOPT_CHECK(!sup.is_array, "cannot subclass an array class");
    desc.fields = sup.fields;  // flattened inheritance
    offset = sup.instance_size;
  }
  for (const auto& spec : fields) {
    FieldDescriptor f;
    f.name = spec.name;
    f.kind = spec.kind;
    f.ref_class = spec.ref_class;
    const auto sz = static_cast<std::uint32_t>(size_of(spec.kind));
    offset = align_up(offset, sz);
    f.offset = offset;
    offset += sz;
    desc.fields.push_back(std::move(f));
  }
  desc.instance_size = align_up(offset, 8);
}

ClassId TypeRegistry::register_prim_array(TypeKind elem) {
  RMIOPT_CHECK(elem != TypeKind::Ref, "use register_ref_array");
  std::string name = "[" + std::string(name_of(elem));
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  ClassDescriptor desc;
  desc.name = std::move(name);
  desc.is_array = true;
  desc.elem_kind = elem;
  return intern(std::move(desc));
}

ClassId TypeRegistry::register_ref_array(ClassId elem_class) {
  const ClassDescriptor& elem = get(elem_class);
  std::string name = "[L" + elem.name + ";";
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  ClassDescriptor desc;
  desc.name = std::move(name);
  desc.is_array = true;
  desc.elem_kind = TypeKind::Ref;
  desc.elem_class = elem_class;
  return intern(std::move(desc));
}

const ClassDescriptor& TypeRegistry::get(ClassId id) const {
  RMIOPT_CHECK(exists(id), "unknown class id " + std::to_string(id));
  return *classes_[id];
}

const ClassDescriptor* TypeRegistry::find_by_name(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : classes_[it->second].get();
}

bool TypeRegistry::is_subclass_of(ClassId maybe_sub, ClassId super) const {
  while (maybe_sub != kNoClass) {
    if (maybe_sub == super) return true;
    maybe_sub = get(maybe_sub).super;
  }
  return false;
}

}  // namespace rmiopt::om
