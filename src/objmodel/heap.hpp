// The managed heap and runtime object representation.
//
// Each simulated machine owns one Heap.  Objects are allocated as a single
// block: a small header (class descriptor pointer + array length) followed
// by the payload.  Reference fields and reference array elements store
// `ObjRef` (an `Object*`) directly — the heap is per-machine, references
// never cross machines; cross-machine object transfer happens only through
// serialization, exactly as in RMI.
//
// There is no tracing collector: the paper's benchmarks measure *allocation
// volume* caused by deserialization ("new (MBytes)" in Tables 4/6/8), which
// the heap tracks, and the skeleton explicitly frees argument graphs after
// an invocation unless the reuse cache retains them (§3.3).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "objmodel/class_desc.hpp"
#include "support/error.hpp"

namespace rmiopt::om {

class Heap;

// Out-of-line storage for a primitive array whose elements live (or lived)
// in a pinned receive-frame buffer rather than inline after the header.
// While `pin` is held, `data` aliases the frame image and the frame cannot
// recycle; a copy-on-write detach (any mutable access) copies the elements
// into `owned`, repoints `data` at them and drops the pin.  `rebind` (the
// §3.3 reuse-cache integration) swaps `data`/`pin` to a *new* frame,
// releasing the previous one.
struct BorrowedStorage {
  const std::uint8_t* data = nullptr;
  std::vector<std::uint8_t> owned;
  std::shared_ptr<void> pin;
};

class alignas(16) Object {
 public:
  // Bit 31 of length_ marks indirect (borrowed-capable) storage; array
  // lengths are capped at 0x7fffffff by the wire decoder, so the bit is
  // free and sizeof(Object) — which feeds the allocation-volume tables —
  // does not change.
  static constexpr std::uint32_t kBorrowedBit = 0x80000000u;

  const ClassDescriptor& cls() const { return *cls_; }
  ClassId class_id() const { return cls_->id; }
  bool is_array() const { return cls_->is_array; }
  std::uint32_t length() const { return length_ & ~kBorrowedBit; }

  // True when the payload lives behind a BorrowedStorage control block
  // (possibly already detached to owned bytes).
  bool has_borrowed_storage() const { return (length_ & kBorrowedBit) != 0; }
  // True while the payload still aliases a pinned receive frame.
  bool is_pinned_borrow() const {
    return has_borrowed_storage() && borrowed_storage()->pin != nullptr;
  }
  BorrowedStorage* borrowed_storage() const {
    BorrowedStorage* s;
    std::memcpy(&s, reinterpret_cast<const std::uint8_t*>(this + 1),
                sizeof(s));
    return s;
  }

  // Mutable access is the copy-on-write escape hatch: a borrowed array
  // detaches to owned bytes before the pointer is handed out, so the
  // frame image can never be scribbled on (retransmits and replay-cache
  // copies stay byte-identical).
  std::uint8_t* payload() {
    if (has_borrowed_storage()) {
      detach();
      return borrowed_storage()->owned.data();
    }
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  const std::uint8_t* payload() const {
    if (has_borrowed_storage()) return borrowed_storage()->data;
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  std::size_t payload_size() const;

  // ---- scalar fields -------------------------------------------------
  template <typename T>
  T get(const FieldDescriptor& f) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, payload() + f.offset, sizeof(T));
    return v;
  }
  template <typename T>
  void set(const FieldDescriptor& f, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(payload() + f.offset, &v, sizeof(T));
  }

  Object* get_ref(const FieldDescriptor& f) const {
    RMIOPT_CHECK(f.kind == TypeKind::Ref, "field is not a reference");
    Object* v;
    std::memcpy(&v, payload() + f.offset, sizeof(v));
    return v;
  }
  void set_ref(const FieldDescriptor& f, Object* v) {
    RMIOPT_CHECK(f.kind == TypeKind::Ref, "field is not a reference");
    std::memcpy(payload() + f.offset, &v, sizeof(v));
  }

  // ---- array elements --------------------------------------------------
  // Spans require element alignment.  Inline payloads are 16-aligned by
  // construction and detached/owned storage by the allocator, but a
  // *pinned borrow* aliases wire bytes at an arbitrary stream offset —
  // binding a typed span there is UB, so it is rejected with a typed
  // error; use get_elem/set_elem (memcpy, alignment-free) instead, or
  // take the mutable span, which detaches first.
  template <typename T>
  std::span<T> elems() {
    std::uint8_t* p = payload();  // detaches a borrow: owned bytes align
    check_aligned(p, alignof(T));
    return {reinterpret_cast<T*>(p), length()};
  }
  template <typename T>
  std::span<const T> elems() const {
    const std::uint8_t* p = payload();
    check_aligned(p, alignof(T));
    return {reinterpret_cast<const T*>(p), length()};
  }

  // Alignment-free element access.  get_elem reads through the const
  // payload — it never detaches a pinned borrow; set_elem is a mutation
  // and detaches copy-on-write like any other.
  template <typename T>
  T get_elem(std::uint32_t i) const {
    static_assert(std::is_trivially_copyable_v<T>);
    RMIOPT_CHECK(i < length(), "array index out of range");
    T v;
    std::memcpy(&v, payload() + i * sizeof(T), sizeof(T));
    return v;
  }
  template <typename T>
  void set_elem(std::uint32_t i, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    RMIOPT_CHECK(i < length(), "array index out of range");
    std::memcpy(payload() + i * sizeof(T), &v, sizeof(T));
  }

  Object* get_elem_ref(std::uint32_t i) const {
    RMIOPT_CHECK(i < length(), "array index out of range");
    Object* v;
    std::memcpy(&v, payload() + i * sizeof(Object*), sizeof(v));
    return v;
  }
  void set_elem_ref(std::uint32_t i, Object* v) {
    RMIOPT_CHECK(i < length(), "array index out of range");
    std::memcpy(payload() + i * sizeof(Object*), &v, sizeof(v));
  }

  std::string_view as_string_view() const {
    RMIOPT_CHECK(cls_->is_string, "object is not a string");
    return {reinterpret_cast<const char*>(payload()), length()};
  }

 private:
  friend class Heap;
  friend void rebind_borrowed(Object* obj, const std::uint8_t* data,
                              std::shared_ptr<void> pin);

  static void check_aligned(const void* p, std::size_t align) {
    RMIOPT_CHECK(reinterpret_cast<std::uintptr_t>(p) % align == 0,
                 "misaligned payload for a typed span: use get_elem/set_elem");
  }
  Object(const ClassDescriptor* cls, std::uint32_t length)
      : cls_(cls), length_(length) {}
  ~Object() = default;

  // Copies borrowed elements into the control block's owned vector and
  // drops the frame pin.  Idempotent; defined out of line (needs
  // payload_size).
  void detach();

  const ClassDescriptor* cls_;
  std::uint32_t length_;
};

using ObjRef = Object*;

struct HeapStats {
  std::atomic<std::uint64_t> objects_allocated{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> objects_freed{0};
  std::atomic<std::uint64_t> bytes_freed{0};

  std::uint64_t live_objects() const {
    return objects_allocated.load() - objects_freed.load();
  }
};

class Heap {
 public:
  explicit Heap(const TypeRegistry& types) : types_(types) {}
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Allocates a non-array instance with zeroed payload.
  ObjRef alloc(const ClassDescriptor& cls);
  ObjRef alloc(ClassId id) { return alloc(types_.get(id)); }

  // Allocates an array instance (prim or ref elements) with zeroed payload.
  ObjRef alloc_array(const ClassDescriptor& cls, std::uint32_t length);
  ObjRef alloc_array(ClassId id, std::uint32_t length) {
    return alloc_array(types_.get(id), length);
  }

  // Allocates a primitive array whose elements *alias* [data, data +
  // length * elem_size) — typically a span into a pinned receive frame —
  // instead of being copied inline.  The object holds `pin` until it
  // detaches (copy-on-write on mutable access) or is freed.  Only the
  // header plus one control-block pointer are charged to the heap, which
  // is exactly the allocation-volume saving the zero-copy receive path
  // claims.
  ObjRef alloc_array_borrowed(const ClassDescriptor& cls, std::uint32_t length,
                              const std::uint8_t* data,
                              std::shared_ptr<void> pin);

  ObjRef alloc_string(std::string_view text);

  // Frees one object (not its referents).
  void free(ObjRef obj);
  // Frees the whole graph reachable from `obj`; cycle-safe.
  void free_graph(ObjRef obj);

  const HeapStats& stats() const { return stats_; }
  const TypeRegistry& types() const { return types_; }

 private:
  ObjRef raw_alloc(const ClassDescriptor& cls, std::uint32_t length,
                   std::size_t payload);

  const TypeRegistry& types_;
  HeapStats stats_;
};

// Swaps a borrowed array's storage to a span in a *new* frame, releasing
// the pin on the previous one.  This is the §3.3 reuse-cache integration:
// `read_reusing` retargets the cached object instead of rewriting bytes.
// Any bytes a previous detach copied are discarded.
void rebind_borrowed(Object* obj, const std::uint8_t* data,
                     std::shared_ptr<void> pin);

// Structural deep equality over object graphs; cycle-safe (two graphs are
// equal if a bisimulation relating their nodes exists along the traversal).
bool deep_equals(const ObjRef a, const ObjRef b);

// Deep graph copy into `heap`; preserves sharing and cycles.  This is what
// RMI semantics require for *local* calls: parameters and return values of
// a same-machine RMI are cloned (paper §1).
ObjRef deep_clone(Heap& heap, const ObjRef obj);

// Number of objects in the graph reachable from `obj` (cycle-safe).
std::size_t graph_object_count(const ObjRef obj);

// Object count and total byte volume (headers + payloads) of a graph.
struct GraphExtent {
  std::size_t objects = 0;
  std::size_t bytes = 0;
};
GraphExtent graph_extent(const ObjRef obj);

// Collects every node reachable from `obj` into `out` (cycle-safe).
void collect_graph(const ObjRef obj, std::unordered_set<Object*>& out);

}  // namespace rmiopt::om
