// The managed heap and runtime object representation.
//
// Each simulated machine owns one Heap.  Objects are allocated as a single
// block: a small header (class descriptor pointer + array length) followed
// by the payload.  Reference fields and reference array elements store
// `ObjRef` (an `Object*`) directly — the heap is per-machine, references
// never cross machines; cross-machine object transfer happens only through
// serialization, exactly as in RMI.
//
// There is no tracing collector: the paper's benchmarks measure *allocation
// volume* caused by deserialization ("new (MBytes)" in Tables 4/6/8), which
// the heap tracks, and the skeleton explicitly frees argument graphs after
// an invocation unless the reuse cache retains them (§3.3).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <unordered_set>

#include "objmodel/class_desc.hpp"
#include "support/error.hpp"

namespace rmiopt::om {

class Heap;

class alignas(16) Object {
 public:
  const ClassDescriptor& cls() const { return *cls_; }
  ClassId class_id() const { return cls_->id; }
  bool is_array() const { return cls_->is_array; }
  std::uint32_t length() const { return length_; }

  std::uint8_t* payload() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* payload() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  std::size_t payload_size() const;

  // ---- scalar fields -------------------------------------------------
  template <typename T>
  T get(const FieldDescriptor& f) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, payload() + f.offset, sizeof(T));
    return v;
  }
  template <typename T>
  void set(const FieldDescriptor& f, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(payload() + f.offset, &v, sizeof(T));
  }

  Object* get_ref(const FieldDescriptor& f) const {
    RMIOPT_CHECK(f.kind == TypeKind::Ref, "field is not a reference");
    Object* v;
    std::memcpy(&v, payload() + f.offset, sizeof(v));
    return v;
  }
  void set_ref(const FieldDescriptor& f, Object* v) {
    RMIOPT_CHECK(f.kind == TypeKind::Ref, "field is not a reference");
    std::memcpy(payload() + f.offset, &v, sizeof(v));
  }

  // ---- array elements --------------------------------------------------
  template <typename T>
  std::span<T> elems() {
    return {reinterpret_cast<T*>(payload()), length_};
  }
  template <typename T>
  std::span<const T> elems() const {
    return {reinterpret_cast<const T*>(payload()), length_};
  }

  Object* get_elem_ref(std::uint32_t i) const {
    RMIOPT_CHECK(i < length_, "array index out of range");
    Object* v;
    std::memcpy(&v, payload() + i * sizeof(Object*), sizeof(v));
    return v;
  }
  void set_elem_ref(std::uint32_t i, Object* v) {
    RMIOPT_CHECK(i < length_, "array index out of range");
    std::memcpy(payload() + i * sizeof(Object*), &v, sizeof(v));
  }

  std::string_view as_string_view() const {
    RMIOPT_CHECK(cls_->is_string, "object is not a string");
    return {reinterpret_cast<const char*>(payload()), length_};
  }

 private:
  friend class Heap;
  Object(const ClassDescriptor* cls, std::uint32_t length)
      : cls_(cls), length_(length) {}
  ~Object() = default;

  const ClassDescriptor* cls_;
  std::uint32_t length_;
};

using ObjRef = Object*;

struct HeapStats {
  std::atomic<std::uint64_t> objects_allocated{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> objects_freed{0};
  std::atomic<std::uint64_t> bytes_freed{0};

  std::uint64_t live_objects() const {
    return objects_allocated.load() - objects_freed.load();
  }
};

class Heap {
 public:
  explicit Heap(const TypeRegistry& types) : types_(types) {}
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Allocates a non-array instance with zeroed payload.
  ObjRef alloc(const ClassDescriptor& cls);
  ObjRef alloc(ClassId id) { return alloc(types_.get(id)); }

  // Allocates an array instance (prim or ref elements) with zeroed payload.
  ObjRef alloc_array(const ClassDescriptor& cls, std::uint32_t length);
  ObjRef alloc_array(ClassId id, std::uint32_t length) {
    return alloc_array(types_.get(id), length);
  }

  ObjRef alloc_string(std::string_view text);

  // Frees one object (not its referents).
  void free(ObjRef obj);
  // Frees the whole graph reachable from `obj`; cycle-safe.
  void free_graph(ObjRef obj);

  const HeapStats& stats() const { return stats_; }
  const TypeRegistry& types() const { return types_; }

 private:
  ObjRef raw_alloc(const ClassDescriptor& cls, std::uint32_t length,
                   std::size_t payload);

  const TypeRegistry& types_;
  HeapStats stats_;
};

// Structural deep equality over object graphs; cycle-safe (two graphs are
// equal if a bisimulation relating their nodes exists along the traversal).
bool deep_equals(const ObjRef a, const ObjRef b);

// Deep graph copy into `heap`; preserves sharing and cycles.  This is what
// RMI semantics require for *local* calls: parameters and return values of
// a same-machine RMI are cloned (paper §1).
ObjRef deep_clone(Heap& heap, const ObjRef obj);

// Number of objects in the graph reachable from `obj` (cycle-safe).
std::size_t graph_object_count(const ObjRef obj);

// Object count and total byte volume (headers + payloads) of a graph.
struct GraphExtent {
  std::size_t objects = 0;
  std::size_t bytes = 0;
};
GraphExtent graph_extent(const ObjRef obj);

// Collects every node reachable from `obj` into `out` (cycle-safe).
void collect_graph(const ObjRef obj, std::unordered_set<Object*>& out);

}  // namespace rmiopt::om
