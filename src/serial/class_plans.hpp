// Class-specific serializer plans — the paper's *baseline* (KaRMI/Manta
// style, §3.1 Figure 7).
//
// For every class the "compiler" generates one serializer that writes the
// class's own fields inline but *recursively invokes* the serializer of the
// runtime class of every referenced object, sending compact type
// information for each object.  The registry builds these plans lazily and
// caches them; both the class-mode marshalers and the dynamic-dispatch
// fallback nodes of call-site plans execute them.
#pragma once

#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "serial/plan.hpp"

namespace rmiopt::serial {

class ClassPlanRegistry {
 public:
  explicit ClassPlanRegistry(const om::TypeRegistry& types) : types_(types) {}
  ClassPlanRegistry(const ClassPlanRegistry&) = delete;
  ClassPlanRegistry& operator=(const ClassPlanRegistry&) = delete;

  // The generated per-class serializer body for `id`.  Field order matches
  // the descriptor; every reference field/element is a dynamic-dispatch
  // node with compact type info and a cycle check.
  const NodePlan& plan_for(om::ClassId id) const;

  const om::TypeRegistry& types() const { return types_; }

 private:
  const om::TypeRegistry& types_;
  // Read-mostly: serializers hit the cache on every dynamic node, so reads
  // take a shared lock; generation (first use of a class) is rare.
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<om::ClassId, std::unique_ptr<NodePlan>> cache_;
};

// A fresh dynamic-dispatch node (the shape class-mode marshalers use for
// every argument root, and call-site plans use as their fallback).
std::unique_ptr<NodePlan> make_dynamic_node(om::ClassId declared_class);

}  // namespace rmiopt::serial
