#include "serial/cycle_table.hpp"

#include <bit>

#include "support/error.hpp"

namespace rmiopt::serial {

CycleTable::CycleTable(std::size_t initial_capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(initial_capacity, 8));
  slots_.assign(cap, Slot{});
  shift_ = 64 - static_cast<unsigned>(std::bit_width(cap) - 1);
}

void CycleTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  shift_ -= 1;
  for (const Slot& s : old) {
    if (s.key == nullptr) continue;
    std::size_t i = slot_for(s.key);
    while (slots_[i].key != nullptr) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = s;
  }
}

std::int32_t CycleTable::lookup_or_insert(om::ObjRef obj) {
  RMIOPT_CHECK(obj != nullptr, "cycle table does not store null");
  ++probes_;
  if (count_ * 4 >= slots_.size() * 3) grow();
  std::size_t i = slot_for(obj);
  const std::size_t mask = slots_.size() - 1;
  while (slots_[i].key != nullptr) {
    if (slots_[i].key == obj) return slots_[i].handle;
    i = (i + 1) & mask;
  }
  slots_[i].key = obj;
  slots_[i].handle = next_handle_++;
  ++count_;
  return -1;
}

bool CycleTable::contains(om::ObjRef obj) const {
  if (obj == nullptr) return false;
  std::size_t i = slot_for(obj);
  const std::size_t mask = slots_.size() - 1;
  while (slots_[i].key != nullptr) {
    if (slots_[i].key == obj) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void CycleTable::clear() {
  for (Slot& s : slots_) s = Slot{};
  count_ = 0;
  next_handle_ = 0;
}

}  // namespace rmiopt::serial
