#include "serial/plan.hpp"

#include <sstream>
#include <unordered_map>

namespace rmiopt::serial {

namespace {

std::unique_ptr<NodePlan> clone_node(
    const NodePlan& src,
    std::unordered_map<const NodePlan*, NodePlan*>& mapping) {
  auto copy = std::make_unique<NodePlan>();
  mapping.emplace(&src, copy.get());
  copy->expected_class = src.expected_class;
  copy->type_info = src.type_info;
  copy->cycle_check = src.cycle_check;
  copy->dynamic_dispatch = src.dynamic_dispatch;
  copy->recurse_to = src.recurse_to;  // remapped by the caller afterwards
  for (const auto& fa : src.fields) {
    NodePlan::FieldAction c;
    c.field = fa.field;
    if (fa.ref_plan) c.ref_plan = clone_node(*fa.ref_plan, mapping);
    copy->fields.push_back(std::move(c));
  }
  if (src.elem_plan) copy->elem_plan = clone_node(*src.elem_plan, mapping);
  return copy;
}

void remap_recursion(NodePlan& node,
                     const std::unordered_map<const NodePlan*, NodePlan*>&
                         mapping) {
  if (node.recurse_to != nullptr) {
    auto it = mapping.find(node.recurse_to);
    if (it != mapping.end()) node.recurse_to = it->second;
  }
  for (auto& fa : node.fields) {
    if (fa.ref_plan) remap_recursion(*fa.ref_plan, mapping);
  }
  if (node.elem_plan) remap_recursion(*node.elem_plan, mapping);
}

}  // namespace

std::unique_ptr<NodePlan> NodePlan::clone() const {
  std::unordered_map<const NodePlan*, NodePlan*> mapping;
  std::unique_ptr<NodePlan> copy = clone_node(*this, mapping);
  remap_recursion(*copy, mapping);
  return copy;
}

std::unique_ptr<CallSitePlan> CallSitePlan::clone() const {
  auto copy = std::make_unique<CallSitePlan>();
  copy->name = name;
  copy->id = id;
  for (const auto& a : args) copy->args.push_back(a->clone());
  if (ret) copy->ret = ret->clone();
  copy->needs_cycle_table = needs_cycle_table;
  copy->reuse_args = reuse_args;
  copy->reuse_ret = reuse_ret;
  return copy;
}

namespace {

void indent_to(std::ostringstream& out, int n) {
  for (int i = 0; i < n; ++i) out << "  ";
}

void render_node(std::ostringstream& out, const NodePlan& plan,
                 const om::TypeRegistry& types, int indent,
                 const std::string& expr) {
  if (plan.recurse_to != nullptr) {
    indent_to(out, indent);
    out << "loop_serialize(" << expr
        << ");  // inlined monomorphic recursion, no dispatch\n";
    return;
  }
  const om::ClassDescriptor* cls =
      plan.expected_class != om::kNoClass ? &types.get(plan.expected_class)
                                          : nullptr;
  if (plan.cycle_check) {
    indent_to(out, indent);
    out << "if (handle = cycle_table.lookup_or_insert(" << expr
        << ")) { m.write_handle(handle); skip; }\n";
  }
  if (plan.dynamic_dispatch) {
    indent_to(out, indent);
    out << expr << ".serialize(m);  // dynamic call"
        << (plan.type_info == TypeInfoMode::CompactId ? ", writes class id"
            : plan.type_info == TypeInfoMode::FullName ? ", writes class name"
                                                       : "")
        << "\n";
    return;
  }
  if (plan.type_info == TypeInfoMode::CompactId) {
    indent_to(out, indent);
    out << "m.write_class_id(" << (cls ? cls->name : "?") << ");\n";
  } else if (plan.type_info == TypeInfoMode::FullName) {
    indent_to(out, indent);
    out << "m.write_class_name(\"" << (cls ? cls->name : "?") << "\");\n";
  }
  if (cls != nullptr && cls->is_array) {
    indent_to(out, indent);
    out << "m.write_int(" << expr << ".length);\n";
    if (cls->elem_kind == om::TypeKind::Ref) {
      indent_to(out, indent);
      out << "for (i = 0; i < " << expr << ".length; i++)\n";
      if (plan.elem_plan) {
        render_node(out, *plan.elem_plan, types, indent + 1, expr + "[i]");
      } else {
        indent_to(out, indent + 1);
        out << expr << "[i].serialize(m);\n";
      }
    } else {
      indent_to(out, indent);
      out << "m.append_" << name_of(cls->elem_kind) << "_array(" << expr
          << ");  // bulk copy, inlined\n";
    }
    return;
  }
  for (const auto& fa : plan.fields) {
    if (fa.field->kind == om::TypeKind::Ref) {
      if (fa.ref_plan) {
        render_node(out, *fa.ref_plan, types, indent,
                    expr + "." + fa.field->name);
      }
    } else {
      indent_to(out, indent);
      out << "m.write_" << name_of(fa.field->kind) << "(" << expr << "."
          << fa.field->name << ");  // inlined\n";
    }
  }
}

}  // namespace

std::string to_pseudocode(const NodePlan& plan, const om::TypeRegistry& types,
                          int indent) {
  std::ostringstream out;
  render_node(out, plan, types, indent, "s");
  return out.str();
}

std::string to_pseudocode(const CallSitePlan& plan,
                          const om::TypeRegistry& types) {
  std::ostringstream out;
  out << "void marshaler_" << plan.name << "(...) {\n";
  out << "  Message m = stack_allocated_message();\n";
  if (plan.needs_cycle_table) {
    out << "  cycle_table = new CycleTable();\n";
  } else {
    out << "  // cycle detection elided: heap analysis proved acyclic\n";
  }
  for (std::size_t i = 0; i < plan.args.size(); ++i) {
    out << "  // --- argument " << i
        << (plan.reuse_args ? " (reusable at callee)" : "") << "\n";
    std::ostringstream node;
    render_node(node, *plan.args[i], types, 1,
                "a" + std::to_string(i));
    out << node.str();
  }
  out << "  m.send();\n";
  if (plan.ret) {
    out << "  wait_for_return_value();"
        << (plan.reuse_ret ? "  // return graph reusable at caller" : "")
        << "\n";
  } else {
    out << "  wait_for_ack();  // return value elided at this call site\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rmiopt::serial
