// The runtime cycle-detection table.
//
// RMI serialization must detect when an object is reached twice so it can
// emit a back-reference ("handle") instead of re-serializing — otherwise
// cyclic structures would never terminate and shared structures would lose
// identity.  The paper's point (§3.2) is that this table is pure overhead
// when the compiler can prove the argument graph acyclic: its costs are
// table creation/deletion, one insert per object, and one probe per
// reference.  We therefore implement it as an open-addressing pointer map
// and *count every probe* — the "cycle lookups" column of Tables 4/6/8.
#pragma once

#include <cstdint>
#include <vector>

#include "objmodel/heap.hpp"
#include "support/hash.hpp"

namespace rmiopt::serial {

class CycleTable {
 public:
  // Capacity is rounded up to a power of two; grows automatically.
  explicit CycleTable(std::size_t initial_capacity = 64);

  // Returns the handle previously assigned to `obj`, or -1 after assigning
  // it the next handle.  One call == one "cycle lookup".
  std::int32_t lookup_or_insert(om::ObjRef obj);

  // Probe without inserting (deserializer-side handle checks use indices,
  // not this table, so this is mostly for tests).
  bool contains(om::ObjRef obj) const;

  void clear();

  std::size_t size() const { return count_; }
  std::uint64_t probes() const { return probes_; }

 private:
  struct Slot {
    om::ObjRef key = nullptr;
    std::int32_t handle = -1;
  };

  void grow();
  std::size_t slot_for(om::ObjRef obj) const {
    return rmiopt::mix_pointer(obj) >> shift_;
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
  unsigned shift_ = 0;  // 64 - log2(capacity), for Fibonacci hashing
  std::int32_t next_handle_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace rmiopt::serial
