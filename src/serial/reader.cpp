#include "serial/reader.hpp"

#include "wire/protocol.hpp"

namespace rmiopt::serial {

SerialReader::SerialReader(const ClassPlanRegistry& class_plans,
                           om::Heap& heap, SerialStats& stats,
                           bool cycle_enabled, trace::PassTrace pt)
    : class_plans_(class_plans),
      types_(class_plans.types()),
      heap_(heap),
      stats_(stats),
      cycle_enabled_(cycle_enabled),
      pt_(pt) {
  if (pt_.recorder != nullptr) real_start_ = std::chrono::steady_clock::now();
}

SerialReader::~SerialReader() {
  if (pt_.recorder == nullptr || pt_.cost == nullptr) return;
  trace::Event e;
  e.kind = pt_.kind;
  e.machine = pt_.machine;
  e.callsite = pt_.callsite;
  e.seq = pt_.seq;
  e.start_ns = pt_.virtual_start_ns;
  e.dur_ns = stats_.cpu_cost(*pt_.cost).as_nanos();
  e.bytes = stats_.bytes_copied_rx;
  e.reuse_hits = stats_.objects_reused;
  e.cycle_lookups = stats_.cycle_lookups;
  e.real_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - real_start_)
                  .count();
  pt_.recorder->record(e);
}

om::ObjRef SerialReader::fresh_alloc(const om::ClassDescriptor& cls,
                                     std::uint32_t length) {
  om::ObjRef obj =
      cls.is_array ? heap_.alloc_array(cls, length) : heap_.alloc(cls);
  ++stats_.objects_allocated;
  stats_.bytes_allocated += sizeof(om::Object) + obj->payload_size();
  fresh_.push_back(obj);
  return obj;
}

om::ObjRef SerialReader::borrowed_alloc(const om::ClassDescriptor& cls,
                                        std::uint32_t length, ByteBuffer& in) {
  const std::size_t psize =
      static_cast<std::size_t>(length) * om::size_of(cls.elem_kind);
  om::ObjRef obj =
      heap_.alloc_array_borrowed(cls, length, in.view_bytes(psize), in.pin());
  ++stats_.objects_allocated;
  // Real allocation volume: header + control-block pointer.  The element
  // bytes stay in the pinned frame, which is the "new (MBytes)" saving the
  // zero-copy receive path delivers.
  stats_.bytes_allocated += sizeof(om::Object) + sizeof(om::BorrowedStorage*);
  ++stats_.recv_segments;
  stats_.recv_bytes_borrowed += psize;
  fresh_.push_back(obj);
  return obj;
}

void SerialReader::adopt_cache_roots(std::span<const om::ObjRef> roots) {
  for (om::ObjRef root : roots) om::collect_graph(root, cache_seen_);
}

void SerialReader::abandon_pass() {
  for (om::ObjRef o : fresh_) {
    heap_.free(o);
    ++stats_.objects_freed;
  }
  for (om::ObjRef o : cache_seen_) {
    heap_.free(o);
    ++stats_.objects_freed;
  }
  fresh_.clear();
  cache_seen_.clear();
  consumed_.clear();
  handles_.clear();
}

void SerialReader::note_handle(om::ObjRef obj, bool node_cycle_check) {
  // Mirrors the writer: a handle was assigned exactly where a probe ran.
  if (cycle_enabled_ && node_cycle_check) handles_.push_back(obj);
}

om::ObjRef SerialReader::read(ByteBuffer& in, const NodePlan& plan) {
  try {
    return read_node(in, plan, nullptr, /*reuse=*/false);
  } catch (...) {
    abandon_pass();
    throw;
  }
}

om::ObjRef SerialReader::read_reusing(ByteBuffer& in, const NodePlan& plan,
                                      om::ObjRef cached) {
  try {
    return read_reusing_impl(in, plan, cached);
  } catch (...) {
    abandon_pass();
    throw;
  }
}

om::ObjRef SerialReader::read_reusing_impl(ByteBuffer& in,
                                           const NodePlan& plan,
                                           om::ObjRef cached) {
  if (cached == nullptr) return read_node(in, plan, nullptr, /*reuse=*/true);

  // Enumerate the cached graph *before* the walk mutates its reference
  // slots, so unmatched ("orphaned") cache nodes can be released after.
  std::vector<om::ObjRef> cache_nodes;
  {
    std::unordered_set<om::ObjRef> seen;
    std::vector<om::ObjRef> stack{cached};
    while (!stack.empty()) {
      om::ObjRef o = stack.back();
      stack.pop_back();
      if (!seen.insert(o).second) continue;
      cache_nodes.push_back(o);
      cache_seen_.insert(o);
      const om::ClassDescriptor& cls = o->cls();
      if (cls.is_array) {
        if (cls.elem_kind == om::TypeKind::Ref) {
          for (std::uint32_t i = 0; i < o->length(); ++i) {
            if (om::ObjRef r = o->get_elem_ref(i)) stack.push_back(r);
          }
        }
      } else {
        for (const auto& f : cls.fields) {
          if (f.kind != om::TypeKind::Ref) continue;
          if (om::ObjRef r = o->get_ref(f)) stack.push_back(r);
        }
      }
    }
  }

  om::ObjRef result = read_node(in, plan, cached, /*reuse=*/true);

  if (consumed_.size() != cache_nodes.size()) {
    for (om::ObjRef o : cache_nodes) {
      if (consumed_.contains(o)) continue;
      heap_.free(o);
      ++stats_.objects_freed;
      cache_seen_.erase(o);  // released; must not be freed again on abandon
    }
  }
  return result;
}

om::ObjRef SerialReader::read_node(ByteBuffer& in, const NodePlan& plan,
                                   om::ObjRef cached, bool reuse) {
  if (plan.recurse_to != nullptr) {
    return read_node(in, *plan.recurse_to, cached, reuse);
  }
  const auto tag = static_cast<wire::ObjTag>(in.get_u8());
  if (tag == wire::kTagNull) return nullptr;
  if (tag == wire::kTagHandle) {
    RMIOPT_CHECK(cycle_enabled_, "handle tag without cycle protocol");
    const std::uint64_t idx = in.get_varint();
    RMIOPT_CHECK(idx < handles_.size(), "dangling back-reference handle");
    return handles_[idx];
  }
  RMIOPT_CHECK(tag == wire::kTagInline, "corrupt object tag");

  if (plan.dynamic_dispatch) {
    const auto runtime_class = static_cast<om::ClassId>(in.get_varint());
    ++stats_.type_decodes;  // hash the descriptor to vtable pointers (§4)
    const om::ClassDescriptor& cls = types_.get(runtime_class);
    return read_body(in, class_plans_.plan_for(runtime_class), cls,
                     plan.cycle_check, cached, reuse);
  }

  if (plan.type_info == TypeInfoMode::CompactId) {
    const auto wire_class = static_cast<om::ClassId>(in.get_varint());
    ++stats_.type_decodes;
    RMIOPT_CHECK(wire_class == plan.expected_class,
                 "wire type does not match call-site plan");
  }
  return read_body(in, plan, types_.get(plan.expected_class),
                   plan.cycle_check, cached, reuse);
}

namespace {

// Protocol hardening: an array length (possibly corrupted in transit) must
// be consistent with the bytes actually present — a primitive array's
// payload follows inline, and every reference element needs at least its
// tag byte.  Rejecting early prevents attacker/corruption-controlled
// allocation sizes.
void check_array_length(const ByteBuffer& in, const om::ClassDescriptor& cls,
                        std::uint64_t length) {
  const std::size_t min_bytes =
      cls.elem_kind == om::TypeKind::Ref
          ? length
          : length * om::size_of(cls.elem_kind);
  RMIOPT_CHECK(length <= 0x7fffffffull && min_bytes <= in.remaining(),
               "array length exceeds message size (corrupt stream)");
}

}  // namespace

om::ObjRef SerialReader::read_body(ByteBuffer& in, const NodePlan& body,
                                   const om::ClassDescriptor& cls,
                                   bool node_cycle_check, om::ObjRef cached,
                                   bool reuse) {
  if (cls.is_array) {
    const std::uint64_t wire_length = in.get_varint();
    check_array_length(in, cls, wire_length);
    const auto length = static_cast<std::uint32_t>(wire_length);
    const bool prim = cls.elem_kind != om::TypeKind::Ref;
    const std::size_t psize =
        prim ? static_cast<std::size_t>(length) * om::size_of(cls.elem_kind)
             : 0;
    // Borrow gate: armed by the runtime (non-HEAVY site, knob on), input
    // backed by a pinned frame, and the row big enough that a span beats
    // the memcpy (same crossover logic as the send-side gather).
    const bool borrowable =
        prim && borrow_min_ != 0 && psize >= borrow_min_ && in.pin() != nullptr;
    om::ObjRef obj;
    // Figure 13: reuse the cached array iff type and size match; otherwise
    // allocate a fresh one ("if an array size is mismatched ... a new
    // array of the correct size is allocated").
    if (reuse && cached != nullptr && cached->class_id() == cls.id &&
        cached->length() == length) {
      obj = cached;
      consumed_.insert(obj);
      ++stats_.objects_reused;
      note_handle(obj, node_cycle_check);
      if (prim) {
        if (borrowable && obj->has_borrowed_storage()) {
          // §3.3 × zero copy: retarget the cached array at the new frame's
          // span instead of rewriting its bytes.  The swap releases the
          // pin on whichever frame the slot borrowed last time.
          om::rebind_borrowed(obj, in.view_bytes(psize), in.pin());
          ++stats_.recv_segments;
          stats_.recv_bytes_borrowed += psize;
        } else {
          in.get_bytes(obj->payload(), psize);
          stats_.bytes_copied_rx += psize;
        }
        return obj;
      }
    } else {
      if (prim) {
        if (borrowable) {
          obj = borrowed_alloc(cls, length, in);
        } else {
          obj = fresh_alloc(cls, length);
          in.get_bytes(obj->payload(), psize);
          stats_.bytes_copied_rx += psize;
        }
        note_handle(obj, node_cycle_check);
        return obj;
      }
      obj = fresh_alloc(cls, length);
      cached = nullptr;  // shape mismatch: children have no counterpart
      note_handle(obj, node_cycle_check);
    }
    const bool reused_here = cached != nullptr;  // after the branch above
    RMIOPT_CHECK(body.elem_plan != nullptr, "ref array plan lacks element plan");
    for (std::uint32_t i = 0; i < length; ++i) {
      om::ObjRef cached_elem = reused_here ? obj->get_elem_ref(i) : nullptr;
      obj->set_elem_ref(i, read_node(in, *body.elem_plan, cached_elem, reuse));
    }
    return obj;
  }

  om::ObjRef obj;
  if (reuse && cached != nullptr && cached->class_id() == cls.id) {
    obj = cached;
    consumed_.insert(obj);
    ++stats_.objects_reused;
  } else {
    obj = fresh_alloc(cls, 0);
    cached = nullptr;
  }
  note_handle(obj, node_cycle_check);
  const bool reused_here = cached != nullptr;
  for (const auto& fa : body.fields) {
    const om::FieldDescriptor& f = *fa.field;
    if (f.kind == om::TypeKind::Ref) {
      RMIOPT_CHECK(fa.ref_plan != nullptr, "ref field plan missing");
      om::ObjRef cached_ref = reused_here ? obj->get_ref(f) : nullptr;
      obj->set_ref(f, read_node(in, *fa.ref_plan, cached_ref, reuse));
    } else {
      in.get_bytes(obj->payload() + f.offset, size_of(f.kind));
      ++stats_.fields_marshaled;
    }
  }
  return obj;
}

om::ObjRef SerialReader::read_introspective(ByteBuffer& in) {
  try {
    return read_introspective_node(in);
  } catch (...) {
    abandon_pass();
    throw;
  }
}

om::ObjRef SerialReader::read_introspective_node(ByteBuffer& in) {
  const auto tag = static_cast<wire::ObjTag>(in.get_u8());
  if (tag == wire::kTagNull) return nullptr;
  if (tag == wire::kTagHandle) {
    const std::uint64_t idx = in.get_varint();
    RMIOPT_CHECK(idx < handles_.size(), "dangling back-reference handle");
    return handles_[idx];
  }
  RMIOPT_CHECK(tag == wire::kTagInline, "corrupt object tag");

  const std::string name = in.get_string();
  ++stats_.type_decodes;
  const om::ClassDescriptor* cls = types_.find_by_name(name);
  RMIOPT_CHECK(cls != nullptr, "unknown class on wire: " + name);

  if (cls->is_array) {
    const std::uint64_t wire_length = in.get_varint();
    check_array_length(in, *cls, wire_length);
    const auto length = static_cast<std::uint32_t>(wire_length);
    om::ObjRef obj = fresh_alloc(*cls, length);
    handles_.push_back(obj);
    if (cls->elem_kind == om::TypeKind::Ref) {
      for (std::uint32_t i = 0; i < length; ++i) {
        obj->set_elem_ref(i, read_introspective_node(in));
      }
    } else {
      in.get_bytes(obj->payload(), obj->payload_size());
      stats_.bytes_copied_rx += obj->payload_size();
    }
    return obj;
  }
  om::ObjRef obj = fresh_alloc(*cls, 0);
  handles_.push_back(obj);
  for (const auto& f : cls->fields) {
    ++stats_.introspected_fields;
    if (f.kind == om::TypeKind::Ref) {
      obj->set_ref(f, read_introspective_node(in));
    } else {
      in.get_bytes(obj->payload() + f.offset, size_of(f.kind));
      ++stats_.fields_marshaled;
    }
  }
  return obj;
}

}  // namespace rmiopt::serial
