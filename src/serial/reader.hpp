// SerialReader: executes unmarshal plans to reconstitute object graphs
// from wire bytes, with optional argument/return-value reuse (§3.3).
//
// One SerialReader corresponds to one deserialization pass (one message).
// It tracks every allocation it performs — that is the "new (MBytes)"
// column of Tables 4/6/8 — and, in reuse mode, rewrites a cached graph from
// a previous invocation in place instead of allocating, exactly like the
// generated unmarshaler of Figure 13 (including the runtime type/size
// check and the fresh-allocation fallback on mismatch).
#pragma once

#include <chrono>
#include <span>
#include <unordered_set>
#include <vector>

#include "objmodel/heap.hpp"
#include "serial/class_plans.hpp"
#include "serial/plan.hpp"
#include "serial/stats.hpp"
#include "support/bytebuffer.hpp"
#include "trace/trace.hpp"

namespace rmiopt::serial {

class SerialReader {
 public:
  // `pt` optionally traces the pass: with a recorder attached the reader
  // emits one Deserialize event when it is destroyed (one instance == one
  // pass), carrying the pass's virtual cost and its measured real-time
  // duration.  The default (null recorder) records nothing and reads no
  // clock.
  SerialReader(const ClassPlanRegistry& class_plans, om::Heap& heap,
               SerialStats& stats, bool cycle_enabled,
               trace::PassTrace pt = {});
  ~SerialReader();
  SerialReader(const SerialReader&) = delete;
  SerialReader& operator=(const SerialReader&) = delete;

  // Deserializes one value according to `plan`, allocating fresh objects.
  om::ObjRef read(ByteBuffer& in, const NodePlan& plan);

  // Deserializes one value, reusing the graph rooted at `cached` (from the
  // previous invocation at this call site) wherever runtime type and array
  // sizes match.  Cached objects that the incoming stream did not match are
  // freed.  Pass `cached == nullptr` for the cold first call.
  om::ObjRef read_reusing(ByteBuffer& in, const NodePlan& plan,
                          om::ObjRef cached);

  // Deserializes a HEAVY (introspective) stream.
  om::ObjRef read_introspective(ByteBuffer& in);

  // Registers cached graphs that this pass *may* consume via read_reusing.
  // Once a reuse slot has been detached (nulled against concurrent use),
  // the reader is the only owner of the old graphs; registering them up
  // front lets an abandoned pass release graphs the stream never reached.
  void adopt_cache_roots(std::span<const om::ObjRef> roots);

  // Arms zero-copy receive for this pass: inline primitive-array rows of
  // at least `min_bytes` payload are materialized as borrowed spans into
  // the input's pinned frame (requires `in.pin() != nullptr`) instead of
  // being copied into fresh heap storage.  The runtime turns this on only
  // for non-HEAVY sites when CostModel::zero_copy_receive is set.
  void enable_borrow(std::size_t min_bytes) { borrow_min_ = min_bytes; }

 private:
  om::ObjRef read_node(ByteBuffer& in, const NodePlan& plan,
                       om::ObjRef cached, bool reuse);
  om::ObjRef read_reusing_impl(ByteBuffer& in, const NodePlan& plan,
                               om::ObjRef cached);
  om::ObjRef read_introspective_node(ByteBuffer& in);

  // Releases everything this pass owns — fresh allocations and adopted
  // cache nodes.  Called when a decode pass throws on corrupt input: the
  // partially-built graph is unreachable, so the reader must unwind it.
  void abandon_pass();
  om::ObjRef read_body(ByteBuffer& in, const NodePlan& body,
                       const om::ClassDescriptor& cls, bool node_cycle_check,
                       om::ObjRef cached, bool reuse);
  om::ObjRef fresh_alloc(const om::ClassDescriptor& cls, std::uint32_t length);
  om::ObjRef borrowed_alloc(const om::ClassDescriptor& cls,
                            std::uint32_t length, ByteBuffer& in);
  void note_handle(om::ObjRef obj, bool node_cycle_check);

  const ClassPlanRegistry& class_plans_;
  const om::TypeRegistry& types_;
  om::Heap& heap_;
  SerialStats& stats_;
  const bool cycle_enabled_;
  std::size_t borrow_min_ = 0;  // 0 = borrowing disabled (the default)
  const trace::PassTrace pt_;
  std::chrono::steady_clock::time_point real_start_;
  std::vector<om::ObjRef> handles_;
  std::unordered_set<om::ObjRef> consumed_;    // reused cache nodes
  std::vector<om::ObjRef> fresh_;              // allocated by this pass
  std::unordered_set<om::ObjRef> cache_seen_;  // adopted cache nodes, alive
};

}  // namespace rmiopt::serial
