#include "serial/writer.hpp"

#include <type_traits>
#include <utility>

#include "wire/protocol.hpp"

namespace rmiopt::serial {

SerialWriter::SerialWriter(const ClassPlanRegistry& class_plans,
                           SerialStats& stats, bool cycle_enabled,
                           trace::PassTrace pt)
    : class_plans_(class_plans),
      types_(class_plans.types()),
      stats_(stats),
      cycle_enabled_(cycle_enabled),
      pt_(pt) {
  if (pt_.recorder != nullptr) real_start_ = std::chrono::steady_clock::now();
}

SerialWriter::~SerialWriter() {
  if (pt_.recorder == nullptr || pt_.cost == nullptr) return;
  trace::Event e;
  e.kind = pt_.kind;
  e.machine = pt_.machine;
  e.callsite = pt_.callsite;
  e.seq = pt_.seq;
  e.start_ns = pt_.virtual_start_ns;
  e.dur_ns = stats_.cpu_cost(*pt_.cost).as_nanos();
  e.bytes = stats_.bytes_copied;
  e.reuse_hits = stats_.objects_reused;
  e.cycle_lookups = stats_.cycle_lookups;
  e.real_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - real_start_)
                  .count();
  pt_.recorder->record(e);
}

template <typename Out>
bool SerialWriter::write_prologue_any(Out& out, bool cycle_check,
                                      om::ObjRef obj) {
  if (obj == nullptr) {
    out.put_u8(wire::kTagNull);
    return true;
  }
  if (cycle_enabled_ && cycle_check) {
    if (!table_used_) {
      // Messages that never serialize an object pay no table setup.
      table_used_ = true;
      ++stats_.cycle_tables_created;
    }
    ++stats_.cycle_lookups;
    const std::int32_t handle = cycles_.lookup_or_insert(obj);
    if (handle >= 0) {
      out.put_u8(wire::kTagHandle);
      out.put_varint(static_cast<std::uint64_t>(handle));
      return true;
    }
  }
  out.put_u8(wire::kTagInline);
  return false;
}

template <typename Out>
void SerialWriter::write_any(Out& out, const NodePlan& plan, om::ObjRef obj) {
  if (plan.recurse_to != nullptr) {
    // Monomorphic recursion: loop back into the ancestor's inlined body.
    write_any(out, *plan.recurse_to, obj);
    return;
  }
  if (write_prologue_any(out, plan.cycle_check, obj)) return;

  if (plan.dynamic_dispatch) {
    // Explicit invocation of the runtime class's generated serializer —
    // what class-specific serialization pays per object (§3.1, Fig. 7).
    ++stats_.serializer_invocations;
    const om::ClassId runtime_class = obj->class_id();
    const std::size_t before = out.size();
    out.put_varint(runtime_class);
    stats_.type_info_bytes += out.size() - before;
    write_body_any(out, class_plans_.plan_for(runtime_class), obj,
                   /*inline_node=*/false);
    return;
  }

  // Inline node: the compiler proved the exact runtime type, so no type
  // information goes on the wire and no serializer call is made.
  RMIOPT_CHECK(obj->class_id() == plan.expected_class,
               "call-site plan type mismatch for class " + obj->cls().name +
                   " (compiler bug)");
  if (plan.type_info == TypeInfoMode::CompactId) {
    const std::size_t before = out.size();
    out.put_varint(plan.expected_class);
    stats_.type_info_bytes += out.size() - before;
  }
  write_body_any(out, plan, obj, /*inline_node=*/true);
}

template <typename Out>
void SerialWriter::write_body_any(Out& out, const NodePlan& body,
                                  om::ObjRef obj, bool inline_node) {
  const om::ClassDescriptor& cls = obj->cls();
  if (cls.is_array) {
    out.put_varint(obj->length());
    if (cls.elem_kind == om::TypeKind::Ref) {
      const NodePlan* elem =
          body.elem_plan ? body.elem_plan.get() : nullptr;
      RMIOPT_CHECK(elem != nullptr, "ref array plan lacks element plan");
      for (std::uint32_t i = 0; i < obj->length(); ++i) {
        write_any(out, *elem, obj->get_elem_ref(i));
      }
    } else {
      const std::size_t n = obj->payload_size();
      // const read: serializing a zero-copy-received (borrowed) array must
      // not trigger its COW detach — the wire wants the bytes, not a
      // mutable pointer.
      const std::uint8_t* src = std::as_const(*obj).payload();
      bool borrowed = false;
      if constexpr (std::is_same_v<Out, support::GatherBuffer>) {
        // Only rows the compiler proved monomorphic (inline nodes) are
        // handed to the NIC as borrowed segments; dynamic-dispatch
        // fallback rows keep the copy so the gathered image never depends
        // on a type only the runtime discovered.
        if (inline_node) borrowed = out.borrow(src, n);
      }
      if (borrowed) {
        ++stats_.gather_segments;
        stats_.gather_bytes_borrowed += n;
      } else {
        if constexpr (!std::is_same_v<Out, support::GatherBuffer>) {
          out.put_bytes(src, n);
        } else if (!inline_node) {
          out.put_bytes(src, n);
        }
        // (an inline borrow() that declined already copied the bytes)
        stats_.bytes_copied += n;
      }
    }
    return;
  }
  for (const auto& fa : body.fields) {
    const om::FieldDescriptor& f = *fa.field;
    if (f.kind == om::TypeKind::Ref) {
      RMIOPT_CHECK(fa.ref_plan != nullptr, "ref field plan missing");
      write_any(out, *fa.ref_plan, obj->get_ref(f));
    } else {
      out.put_bytes(std::as_const(*obj).payload() + f.offset,
                    size_of(f.kind));
      ++stats_.fields_marshaled;
    }
  }
}

void SerialWriter::write(ByteBuffer& out, const NodePlan& plan,
                         om::ObjRef obj) {
  write_any(out, plan, obj);
}

void SerialWriter::write(support::GatherBuffer& out, const NodePlan& plan,
                         om::ObjRef obj) {
  write_any(out, plan, obj);
}

void SerialWriter::write_introspective(ByteBuffer& out, om::ObjRef obj) {
  if (obj == nullptr) {
    out.put_u8(wire::kTagNull);
    return;
  }
  // The HEAVY protocol always cycle-checks, independent of the pass flag.
  if (!table_used_) {
    table_used_ = true;
    ++stats_.cycle_tables_created;
  }
  ++stats_.cycle_lookups;
  const std::int32_t handle = cycles_.lookup_or_insert(obj);
  if (handle >= 0) {
    out.put_u8(wire::kTagHandle);
    out.put_varint(static_cast<std::uint64_t>(handle));
    return;
  }
  out.put_u8(wire::kTagInline);
  ++stats_.serializer_invocations;

  const om::ClassDescriptor& cls = obj->cls();
  const std::size_t before = out.size();
  out.put_string(cls.name);
  stats_.type_info_bytes += out.size() - before;

  if (cls.is_array) {
    out.put_varint(obj->length());
    if (cls.elem_kind == om::TypeKind::Ref) {
      for (std::uint32_t i = 0; i < obj->length(); ++i) {
        write_introspective(out, obj->get_elem_ref(i));
      }
    } else {
      out.put_bytes(std::as_const(*obj).payload(), obj->payload_size());
      stats_.bytes_copied += obj->payload_size();
    }
    return;
  }
  for (const auto& f : cls.fields) {
    ++stats_.introspected_fields;  // runtime layout examination
    if (f.kind == om::TypeKind::Ref) {
      write_introspective(out, obj->get_ref(f));
    } else {
      out.put_bytes(std::as_const(*obj).payload() + f.offset,
                    size_of(f.kind));
      ++stats_.fields_marshaled;
    }
  }
}

}  // namespace rmiopt::serial
