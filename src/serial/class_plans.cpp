#include "serial/class_plans.hpp"
#include <mutex>

namespace rmiopt::serial {

std::unique_ptr<NodePlan> make_dynamic_node(om::ClassId declared_class) {
  auto n = std::make_unique<NodePlan>();
  n->expected_class = declared_class;
  n->type_info = TypeInfoMode::CompactId;
  n->cycle_check = true;
  n->dynamic_dispatch = true;
  return n;
}

const NodePlan& ClassPlanRegistry::plan_for(om::ClassId id) const {
  {
    std::shared_lock lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) return *it->second;

  const om::ClassDescriptor& cls = types_.get(id);
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = id;
  // The plan body describes the *fields*; type info and the cycle check for
  // the object itself are emitted by the dynamic-dispatch caller.
  plan->type_info = TypeInfoMode::None;
  plan->cycle_check = false;
  plan->dynamic_dispatch = false;
  if (cls.is_array) {
    if (cls.elem_kind == om::TypeKind::Ref) {
      plan->elem_plan = make_dynamic_node(cls.elem_class);
    }
  } else {
    for (const auto& f : cls.fields) {
      NodePlan::FieldAction fa;
      fa.field = &f;
      if (f.kind == om::TypeKind::Ref) {
        fa.ref_plan = make_dynamic_node(f.ref_class);
      }
      plan->fields.push_back(std::move(fa));
    }
  }
  const NodePlan& ref = *plan;
  cache_.emplace(id, std::move(plan));
  return ref;
}

}  // namespace rmiopt::serial
