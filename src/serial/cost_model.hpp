// The calibrated cost model.
//
// The paper ran on 1 GHz Pentium III nodes over Myrinet with the GM
// user-level communication system (§5); we run on whatever machine builds
// this repository, so absolute times are meaningless.  Instead, every
// runtime event that the paper's optimizations remove or add is *charged*
// to the owning machine's virtual clock with a constant calibrated to the
// paper's own figures:
//
//  * "a single optimized RMI may cost as little as 40 microseconds" (§3.3)
//    → one-way message latency 15 µs + dispatch overheads ≈ 40 µs round
//      trip for an empty optimized call;
//  * "object allocation and deallocation costs about 0.1 microseconds"
//    (§3.3) → alloc_ns = 100;
//  * GM wakes its kernel poll thread after 20 µs (§5) → poll_wakeup_ns;
//  * Myrinet-era bandwidth ≈ 250 MB/s on the wire, ≈ 800 MB/s for memcpy
//    on a P-III.
//
// Everything the serializers do is counted in events (fields marshaled,
// serializer method invocations, cycle probes, type-info bytes, objects
// allocated) and converted to virtual nanoseconds here, so benchmark
// "seconds" are deterministic and hardware-independent while preserving
// the paper's relative cost structure.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/sim_time.hpp"

namespace rmiopt::serial {

struct CostModel {
  // ---- CPU-side serialization costs --------------------------------------
  // One dynamically dispatched serializer method call (vtable lookup, call
  // frame, stream bookkeeping).  Paid per *object* by class-specific
  // serializers; paid only at dynamic-dispatch fallback nodes by
  // call-site-specific ones.
  std::int64_t serializer_invoke_ns = 100;
  // Runtime introspection of one field (reflective baseline only).
  std::int64_t introspect_field_ns = 90;
  // Marshaling one scalar field with generated code (load + store + cursor).
  std::int64_t field_marshal_ns = 6;
  // Bulk copy, per byte (primitive array payloads, string bodies).
  double byte_copy_ns = 1.25;
  // One cycle-table probe.  This is a Java-style synchronized identity
  // hash table on a 1 GHz machine: uncontended lock, identityHashCode,
  // bucket chase, and an Entry/handle box allocation on insert — several
  // hundred cycles (§3.2 lists exactly these costs).
  std::int64_t cycle_probe_ns = 700;
  // Creation + deletion of the table itself, paid once per message that
  // actually serializes objects.
  std::int64_t cycle_table_setup_ns = 800;
  // Decoding per-object type information on the receiver: read the id/name
  // and map it to a class descriptor ("hash a type descriptor to vtable
  // pointers", §4).
  std::int64_t type_decode_ns = 100;
  // Heap allocation of one object (§3.3: "about 0.1 microseconds").
  std::int64_t alloc_ns = 100;
  // Amortized collector work charged per allocation: collections trigger
  // on the allocation path, so tracing/sweeping/cache disturbance lands on
  // the deserialization critical path.  The paper's own Table 1 implies
  // ~0.35–0.5 µs saved per recycled object — more than the bare 0.1 µs
  // allocation — and §7 attributes the difference to GC strain and
  // "better caching behavior".
  std::int64_t gc_amortized_ns = 250;
  // Explicit release bookkeeping (runs off the critical path).
  std::int64_t free_ns = 60;
  // Per-call marshaler/skeleton machinery.  Generic (class-mode) stubs pay
  // "many method table lookups and skeleton indirections" (§1): stub
  // dispatch, skeleton lookup, reply unwrapping.  Call-site-generated code
  // is a straight-line function.  Paid on both the caller and the callee.
  std::int64_t generic_stub_ns = 1500;
  std::int64_t site_stub_ns = 200;
  // Generic stubs additionally box every argument and the return value
  // (primitives become Integer/Long objects, arguments go through an
  // Object[]); generated marshalers pass them directly.  Per value, paid
  // on both sides, class/introspective modes only.
  std::int64_t generic_arg_box_ns = 800;

  // ---- zero-copy receive (related-work integration, §6 [10]) -------------
  // When enabled (Kono & Masuda's scheme; the paper notes "our object
  // reuse scheme can be used in combination with their zero copy scheme
  // for increased performance"), delivery lands frame images in pooled,
  // refcounted buffers (support::FramePool) and non-HEAVY readers
  // *borrow* inline primitive-array rows of at least
  // gather_min_borrow_bytes straight out of the pinned frame instead of
  // copying them into fresh heap storage.  Borrowed arrays detach
  // (copy-on-write) on any mutable access; the frame recycles when its
  // last borrower lets go.  A borrowed row is charged per segment
  // (gather_segment_ns) plus light per-KB preprocessing below, replacing
  // the per-byte copy charge for exactly the bytes not copied.  Off
  // (default): no pool, no pins, no borrows — the historical copy path,
  // bit for bit.
  bool zero_copy_receive = false;
  double zero_copy_preprocess_ns_per_kb = 80.0;

  // ---- zero-copy scatter-gather send --------------------------------------
  // When enabled, call sites with BARE plans serialize into a
  // support::GatherBuffer: inline primitive-array rows become borrowed
  // iovec segments the NIC concatenates, instead of being memcpy'd into a
  // contiguous image.  A borrowed row is charged per *segment* (descriptor
  // setup in the gather list) rather than per byte; everything else — wire
  // bytes, headers, latency — is priced exactly as before, and with the
  // knob off (default) no gather buffer ever exists, so the deterministic
  // tables are untouched bit for bit.
  bool zero_copy_send = false;
  // Spans shorter than this are copied inline: an iovec entry costs more
  // than the memcpy it would save.
  std::size_t gather_min_borrow_bytes = 64;
  // Seal-time policy: borrowed spans below this are folded into owned
  // bytes (copy-on-seal); larger ones are pinned by refcounted snapshot.
  std::size_t gather_pin_copy_threshold = 256;
  // Per borrowed segment: gather-list entry + NIC SG descriptor setup.
  std::int64_t gather_segment_ns = 120;

  // ---- network costs (GM over Myrinet) ------------------------------------
  std::int64_t send_overhead_ns = 2'000;   // GM send descriptor + doorbell
  std::int64_t msg_latency_ns = 15'000;    // one-way wire + host latency
  double wire_byte_ns = 4.0;               // ≈ 250 MB/s
  // GM fragments large messages; each additional fragment pays a
  // per-fragment send/pipeline overhead on top of the byte cost.
  std::int64_t fragment_bytes = 4096;
  std::int64_t fragment_overhead_ns = 900;
  std::int64_t recv_poll_ns = 1'000;       // successful poll + upcall
  std::int64_t poll_wakeup_ns = 20'000;    // blocked GM-poll-thread wakeup
  // Thread switch to the invocation thread on the callee (real RMI spawns
  // a thread per call; Manta-JavaParty upcalls, which is cheaper).
  std::int64_t upcall_dispatch_ns = 1'500;

  SimTime for_bytes_copied(std::uint64_t n) const {
    return SimTime::nanos(static_cast<std::int64_t>(byte_copy_ns * static_cast<double>(n)));
  }
  SimTime for_wire_bytes(std::uint64_t n) const {
    return SimTime::nanos(static_cast<std::int64_t>(wire_byte_ns * static_cast<double>(n)));
  }
};

}  // namespace rmiopt::serial
