// Event counters for one (de)serialization pass.
//
// The serializers count events; the cost model converts the counts to
// virtual time; the RMI layer aggregates them into per-machine RmiStats
// (the "runtime statistics" columns of the paper's Tables 4, 6 and 8).
#pragma once

#include <cstdint>

#include "serial/cost_model.hpp"
#include "support/sim_time.hpp"

namespace rmiopt::serial {

struct SerialStats {
  std::uint64_t serializer_invocations = 0;  // dynamic serialize() calls
  std::uint64_t fields_marshaled = 0;        // scalar fields moved
  std::uint64_t introspected_fields = 0;     // reflective walks (HEAVY only)
  std::uint64_t bytes_copied = 0;            // bulk payload bytes (send)
  std::uint64_t bytes_copied_rx = 0;         // bulk payload bytes (receive)
  std::uint64_t gather_segments = 0;         // borrowed iovec segments (send)
  std::uint64_t gather_bytes_borrowed = 0;   //   ... their payload volume
  std::uint64_t recv_segments = 0;           // borrowed frame spans (receive)
  std::uint64_t recv_bytes_borrowed = 0;     //   ... their payload volume
  std::uint64_t cycle_lookups = 0;           // cycle-table probes
  std::uint64_t cycle_tables_created = 0;
  std::uint64_t type_info_bytes = 0;         // wire bytes spent on types
  std::uint64_t type_decodes = 0;            // receiver-side type resolution
  std::uint64_t objects_allocated = 0;       // deserialization allocations
  std::uint64_t bytes_allocated = 0;         //   ... their payload volume
  std::uint64_t objects_reused = 0;          // reuse-cache hits (§3.3)
  std::uint64_t objects_freed = 0;           // graphs released post-call

  SerialStats& operator+=(const SerialStats& o) {
    serializer_invocations += o.serializer_invocations;
    fields_marshaled += o.fields_marshaled;
    introspected_fields += o.introspected_fields;
    bytes_copied += o.bytes_copied;
    bytes_copied_rx += o.bytes_copied_rx;
    gather_segments += o.gather_segments;
    gather_bytes_borrowed += o.gather_bytes_borrowed;
    recv_segments += o.recv_segments;
    recv_bytes_borrowed += o.recv_bytes_borrowed;
    cycle_lookups += o.cycle_lookups;
    cycle_tables_created += o.cycle_tables_created;
    type_info_bytes += o.type_info_bytes;
    type_decodes += o.type_decodes;
    objects_allocated += o.objects_allocated;
    bytes_allocated += o.bytes_allocated;
    objects_reused += o.objects_reused;
    objects_freed += o.objects_freed;
    return *this;
  }

  // Componentwise equality: two passes (or totals) saw exactly the same
  // events.  The transport-equivalence tests lean on this to assert that
  // a backend swap changes *nothing* the serializers observed.
  friend bool operator==(const SerialStats&, const SerialStats&) = default;

  // Virtual CPU time this pass costs under `m`.
  SimTime cpu_cost(const CostModel& m) const {
    std::int64_t ns = 0;
    ns += static_cast<std::int64_t>(serializer_invocations) * m.serializer_invoke_ns;
    ns += static_cast<std::int64_t>(fields_marshaled) * m.field_marshal_ns;
    ns += static_cast<std::int64_t>(introspected_fields) * m.introspect_field_ns;
    ns += static_cast<std::int64_t>(cycle_lookups) * m.cycle_probe_ns;
    ns += static_cast<std::int64_t>(cycle_tables_created) * m.cycle_table_setup_ns;
    ns += static_cast<std::int64_t>(type_decodes) * m.type_decode_ns;
    ns += static_cast<std::int64_t>(objects_allocated) *
          (m.alloc_ns + m.gc_amortized_ns);
    ns += static_cast<std::int64_t>(objects_freed) * m.free_ns;
    SimTime t = SimTime::nanos(ns) + m.for_bytes_copied(bytes_copied);
    // Scatter-gather send: a borrowed row pays for its gather-list entry,
    // not for a byte copy.  The counters are only ever non-zero when
    // CostModel::zero_copy_send routed serialization into a GatherBuffer,
    // so default-configuration charging is untouched.
    ns = static_cast<std::int64_t>(gather_segments) * m.gather_segment_ns;
    t += SimTime::nanos(ns);
    // Zero-copy receive: rows the reader *borrowed* straight out of the
    // pinned frame were counted into recv_* instead of bytes_copied_rx, so
    // the byte-copy charge disappears for exactly the bytes that were not
    // copied.  A borrowed span pays its gather-list dual (per-segment
    // bookkeeping) plus Kono/Masuda-style light preprocessing ([10], §6)
    // per KB.  All three counters are zero unless
    // CostModel::zero_copy_receive routed the reader into borrow mode, so
    // default-configuration charging is untouched.
    t += m.for_bytes_copied(bytes_copied_rx);
    ns = static_cast<std::int64_t>(recv_segments) * m.gather_segment_ns;
    ns += static_cast<std::int64_t>(
        m.zero_copy_preprocess_ns_per_kb *
        (static_cast<double>(recv_bytes_borrowed) / 1024.0));
    t += SimTime::nanos(ns);
    return t;
  }
};

}  // namespace rmiopt::serial
