// Marshal plans: the compiler's generated (un)marshaling code.
//
// The paper's compiler emits marshaling code "directly in the compiler's
// intermediate language" (§3.1).  Our equivalent artifact is a `NodePlan`
// tree: a statically-resolved description of how to serialize one object
// node and the substructure the compiler could prove.  Executing a plan is
// the analog of running the generated code, and the cost model charges
// exactly what each generated-code shape would cost:
//
//  * an *inline* node (dynamic_dispatch == false) is serialization code
//    inlined at the call site — no method invocation, no type info;
//  * a *dynamic* node (dynamic_dispatch == true) is an explicit invocation
//    of the class-specific serializer of the object's runtime class — one
//    serializer invocation plus compact type info per object, recursively;
//  * `cycle_check` marks nodes that must consult the runtime cycle table;
//  * a null `ret` plan in `CallSitePlan` means the call site ignores the
//    return value, so the callee sends a small ACK instead (§3.1).
//
// `class`-mode compilation produces degenerate plans whose roots are all
// dynamic — that reproduces the class-specific serializers of KaRMI/Manta
// that the paper uses as its baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "objmodel/class_desc.hpp"

namespace rmiopt::serial {

enum class TypeInfoMode : std::uint8_t {
  None,       // BARE: both sides know the type from the plan
  CompactId,  // COMPACT: varint class id (class-specific protocol)
  FullName,   // HEAVY: class name string (introspective protocol)
};

struct NodePlan {
  // Static class of this node.  For inline nodes this is exact (the heap
  // analysis proved the runtime type); for dynamic nodes it is only the
  // declared upper bound and the runtime class decides.
  om::ClassId expected_class = om::kNoClass;
  TypeInfoMode type_info = TypeInfoMode::None;
  bool cycle_check = false;
  bool dynamic_dispatch = false;

  // Monomorphic recursion (§3.1): when the heap analysis proves that a
  // recursive position (a linked list's `Next`) unambiguously holds one
  // class, the generated code loops back into the ancestor's inlined body
  // instead of calling the class-specific serializer — no type info, no
  // dispatch.  Non-owning pointer to an ancestor node of the same plan
  // tree; all other fields of a recursion node are unused.
  const NodePlan* recurse_to = nullptr;

  // Non-array inline nodes: actions per field, in layout order.
  struct FieldAction {
    const om::FieldDescriptor* field = nullptr;
    // Set for Ref fields: how to serialize the referent.
    std::unique_ptr<NodePlan> ref_plan;
  };
  std::vector<FieldAction> fields;

  // Ref-element arrays: how to serialize each element.  Primitive arrays
  // (including strings) are bulk-copied and need no element plan.
  std::unique_ptr<NodePlan> elem_plan;

  // Deep copy (plans are owned by the compiled program; tests clone).
  // recurse_to back edges are remapped onto the copies.
  std::unique_ptr<NodePlan> clone() const;
};

struct CallSitePlan {
  std::string name;  // e.g. "ArrayBench.benchmark.send#0"
  std::uint32_t id = 0;
  std::vector<std::unique_ptr<NodePlan>> args;
  std::unique_ptr<NodePlan> ret;  // nullptr => return value elided, ACK only
  // Whether this site needs a runtime cycle table at all.  `class` mode:
  // always true.  `site+cycle` mode: false iff the heap analysis proved
  // every argument/return graph acyclic (§3.2).
  bool needs_cycle_table = true;
  // Whether the callee may cache and reuse the deserialized argument graph
  // (and the caller the return graph) across invocations (§3.3).
  bool reuse_args = false;
  bool reuse_ret = false;

  std::unique_ptr<CallSitePlan> clone() const;
};

// Renders a plan as pseudo code in the style of the paper's Figures 6/7/13
// (used by tests and the compiler_tour example to compare generated code).
std::string to_pseudocode(const NodePlan& plan, const om::TypeRegistry& types,
                          int indent = 0);
std::string to_pseudocode(const CallSitePlan& plan,
                          const om::TypeRegistry& types);

}  // namespace rmiopt::serial
