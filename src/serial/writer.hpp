// SerialWriter: executes marshal plans (and the reflective fallback) to
// turn object graphs into wire bytes.
//
// One SerialWriter instance corresponds to one serialization *pass* (one
// message): it owns the pass's cycle table — created only when the call
// site needs one, which is exactly the §3.2 optimization — and accumulates
// event counts into the caller's SerialStats.
#pragma once

#include <chrono>

#include "objmodel/heap.hpp"
#include "serial/class_plans.hpp"
#include "serial/cycle_table.hpp"
#include "serial/plan.hpp"
#include "serial/stats.hpp"
#include "support/bytebuffer.hpp"
#include "support/gather_buffer.hpp"
#include "trace/trace.hpp"

namespace rmiopt::serial {

class SerialWriter {
 public:
  // `pt` optionally traces the pass: with a recorder attached the writer
  // emits one Serialize event when it is destroyed (one instance == one
  // pass), carrying the pass's virtual cost and its measured real-time
  // duration.  The default (null recorder) records nothing and reads no
  // clock.
  SerialWriter(const ClassPlanRegistry& class_plans, SerialStats& stats,
               bool cycle_enabled, trace::PassTrace pt = {});
  ~SerialWriter();
  SerialWriter(const SerialWriter&) = delete;
  SerialWriter& operator=(const SerialWriter&) = delete;

  // Serializes `obj` according to `plan` (call-site or class mode).
  void write(ByteBuffer& out, const NodePlan& plan, om::ObjRef obj);

  // Scatter-gather variant: identical byte image, but inline
  // primitive-array payloads become borrowed segments of `out` instead of
  // being copied (counted as gather_segments/gather_bytes_borrowed rather
  // than bytes_copied).  Dynamic-dispatch fallback nodes still copy — only
  // rows the compiler proved monomorphic are safe to hand to the NIC.
  void write(support::GatherBuffer& out, const NodePlan& plan,
             om::ObjRef obj);

  // Serializes `obj` with full runtime introspection and class names on the
  // wire (the Sun-RMI-like HEAVY protocol; always cycle-checks).
  void write_introspective(ByteBuffer& out, om::ObjRef obj);

 private:
  // The writing logic is one template over the output sink; the
  // GatherBuffer instantiation may borrow at inline primitive-array
  // nodes, the ByteBuffer instantiation always copies.
  template <typename Out>
  void write_any(Out& out, const NodePlan& plan, om::ObjRef obj);
  template <typename Out>
  void write_body_any(Out& out, const NodePlan& body, om::ObjRef obj,
                      bool inline_node);
  // Returns true if a tag terminated the node (null or back-reference).
  template <typename Out>
  bool write_prologue_any(Out& out, bool cycle_check, om::ObjRef obj);

  const ClassPlanRegistry& class_plans_;
  const om::TypeRegistry& types_;
  SerialStats& stats_;
  const bool cycle_enabled_;
  const trace::PassTrace pt_;
  std::chrono::steady_clock::time_point real_start_;
  bool table_used_ = false;  // lazily count table creation on first probe
  CycleTable cycles_;
};

}  // namespace rmiopt::serial
