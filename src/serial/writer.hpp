// SerialWriter: executes marshal plans (and the reflective fallback) to
// turn object graphs into wire bytes.
//
// One SerialWriter instance corresponds to one serialization *pass* (one
// message): it owns the pass's cycle table — created only when the call
// site needs one, which is exactly the §3.2 optimization — and accumulates
// event counts into the caller's SerialStats.
#pragma once

#include <chrono>

#include "objmodel/heap.hpp"
#include "serial/class_plans.hpp"
#include "serial/cycle_table.hpp"
#include "serial/plan.hpp"
#include "serial/stats.hpp"
#include "support/bytebuffer.hpp"
#include "trace/trace.hpp"

namespace rmiopt::serial {

class SerialWriter {
 public:
  // `pt` optionally traces the pass: with a recorder attached the writer
  // emits one Serialize event when it is destroyed (one instance == one
  // pass), carrying the pass's virtual cost and its measured real-time
  // duration.  The default (null recorder) records nothing and reads no
  // clock.
  SerialWriter(const ClassPlanRegistry& class_plans, SerialStats& stats,
               bool cycle_enabled, trace::PassTrace pt = {});
  ~SerialWriter();
  SerialWriter(const SerialWriter&) = delete;
  SerialWriter& operator=(const SerialWriter&) = delete;

  // Serializes `obj` according to `plan` (call-site or class mode).
  void write(ByteBuffer& out, const NodePlan& plan, om::ObjRef obj);

  // Serializes `obj` with full runtime introspection and class names on the
  // wire (the Sun-RMI-like HEAVY protocol; always cycle-checks).
  void write_introspective(ByteBuffer& out, om::ObjRef obj);

 private:
  void write_body(ByteBuffer& out, const NodePlan& body, om::ObjRef obj);
  // Returns true if a tag terminated the node (null or back-reference).
  bool write_prologue(ByteBuffer& out, bool cycle_check, om::ObjRef obj);

  const ClassPlanRegistry& class_plans_;
  const om::TypeRegistry& types_;
  SerialStats& stats_;
  const bool cycle_enabled_;
  const trace::PassTrace pt_;
  std::chrono::steady_clock::time_point real_start_;
  bool table_used_ = false;  // lazily count table creation on first probe
  CycleTable cycles_;
};

}  // namespace rmiopt::serial
