#include "driver/pass_manager.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "analysis/cycle_analysis.hpp"
#include "analysis/escape_analysis.hpp"
#include "analysis/heap_analysis.hpp"

namespace rmiopt::driver {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One level down in the §3.3 reuse dimension only; every other level has
// no reuse machinery to demote away.
OptLevel demoted(OptLevel level) {
  switch (level) {
    case OptLevel::SiteReuse:
      return OptLevel::Site;
    case OptLevel::SiteReuseCycle:
      return OptLevel::SiteCycle;
    default:
      return level;
  }
}

}  // namespace

PassManager::PassManager(const Options& options) : opts_(options) {
  epoch_ns_ = steady_ns();
}

PassManager::~PassManager() = default;

std::int64_t PassManager::now_ns() const { return steady_ns() - epoch_ns_; }

void PassManager::trace_pass(PassId id, std::int64_t start_ns,
                             std::int64_t end_ns) {
  if (opts_.recorder == nullptr) return;
  trace::Event e;
  e.kind = trace::EventKind::CompilePass;
  e.track = trace::TrackKind::Machine;
  e.machine = trace::kCompilerTrack;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.seq = static_cast<std::uint32_t>(id);
  e.real_ns = e.dur_ns;
  opts_.recorder->record(e);
}

void PassManager::trace_hit(PassId id) {
  if (opts_.recorder == nullptr) return;
  trace::Event e;
  e.kind = trace::EventKind::CompileCacheHit;
  e.track = trace::TrackKind::Machine;
  e.machine = trace::kCompilerTrack;
  e.start_ns = now_ns();
  e.seq = static_cast<std::uint32_t>(id);
  opts_.recorder->record(e);
}

PassManager::ModuleAnalyses& PassManager::analyses_for(const ir::Module& module,
                                                       std::uint64_t fp,
                                                       bool precise,
                                                       CompileStats& stats) {
  ModuleAnalyses* entry;
  if (opts_.cache_analyses) {
    entry = &analyses_[fp];
  } else {
    scratch_ = ModuleAnalyses{};
    entry = &scratch_;
  }
  if (entry->module == nullptr) entry->module = &module;
  const ir::Module& m = *entry->module;
  const bool caching = opts_.cache_analyses;

  // verify: no artifact beyond the verdict, so the cached state is a flag.
  {
    PassStats& s = stats.pass(PassId::Verify);
    if (entry->verified) {
      ++s.cache_hits;
      trace_hit(PassId::Verify);
    } else {
      if (caching) ++s.cache_misses;
      const std::int64_t t0 = now_ns();
      ir::verify(m);
      const std::int64_t t1 = now_ns();
      ++s.executions;
      s.wall_ns += t1 - t0;
      trace_pass(PassId::Verify, t0, t1);
      entry->verified = true;
    }
  }

  // heap: the §2 fixpoint — the expensive shared artifact.
  {
    PassStats& s = stats.pass(PassId::Heap);
    if (entry->heap) {
      ++s.cache_hits;
      trace_hit(PassId::Heap);
    } else {
      if (caching) ++s.cache_misses;
      const std::int64_t t0 = now_ns();
      entry->heap = std::make_shared<analysis::HeapAnalysis>(m);
      entry->heap->run();
      const std::int64_t t1 = now_ns();
      ++s.executions;
      s.wall_ns += t1 - t0;
      stats.fixpoint_iterations += entry->heap->iterations();
      trace_pass(PassId::Heap, t0, t1);
    }
  }

  // cycle / precise-cycles: demand-driven query objects over the heap
  // graph; only the variant this compile asks for is materialized.  The
  // per-site queries themselves execute inside plangen (see PIPELINE.md).
  {
    const PassId id = precise ? PassId::PreciseCycles : PassId::Cycle;
    std::shared_ptr<analysis::CycleAnalysis>& slot =
        precise ? entry->precise_cycles : entry->cycles;
    PassStats& s = stats.pass(id);
    if (slot) {
      ++s.cache_hits;
      trace_hit(id);
    } else {
      if (caching) ++s.cache_misses;
      const std::int64_t t0 = now_ns();
      slot = std::make_shared<analysis::CycleAnalysis>(*entry->heap, precise);
      const std::int64_t t1 = now_ns();
      ++s.executions;
      s.wall_ns += t1 - t0;
      trace_pass(id, t0, t1);
    }
  }

  // escape (§3.3): likewise a query object over the heap graph.
  {
    PassStats& s = stats.pass(PassId::Escape);
    if (entry->escapes) {
      ++s.cache_hits;
      trace_hit(PassId::Escape);
    } else {
      if (caching) ++s.cache_misses;
      const std::int64_t t0 = now_ns();
      entry->escapes = std::make_shared<analysis::EscapeAnalysis>(*entry->heap);
      const std::int64_t t1 = now_ns();
      ++s.executions;
      s.wall_ns += t1 - t0;
      trace_pass(PassId::Escape, t0, t1);
    }
  }

  return *entry;
}

const analysis::CycleAnalysis& PassManager::cycles_of(const ModuleAnalyses& a,
                                                      bool precise) const {
  return precise ? *a.precise_cycles : *a.cycles;
}

CompiledProgram PassManager::compile(const ir::Module& module, OptLevel level,
                                     const CompileOptions& options) {
  std::scoped_lock lock(mu_);
  CompiledProgram program;
  program.level = level;
  program.options = options;
  program.fingerprint = module.fingerprint();

  ModuleAnalyses& a = analyses_for(module, program.fingerprint,
                                   options.precise_cycles, program.stats);
  program.heap_nodes = a.heap->node_count();
  program.fixpoint_iterations = a.heap->iterations();

  PassStats& pg = program.stats.pass(PassId::PlanGen);
  const codegen::PlanKey key{program.fingerprint, level,
                             options.precise_cycles};
  const auto* cached = opts_.cache_plans ? plans_.find(key) : nullptr;
  if (cached != nullptr) {
    pg.cache_hits += cached->size();
    trace_hit(PassId::PlanGen);
    for (const auto& [tag, decision] : *cached) {
      program.sites.emplace(tag, decision.clone());
    }
  } else {
    codegen::PlanGenerator gen(*a.heap, cycles_of(a, options.precise_cycles),
                               *a.escapes);
    const std::int64_t t0 = now_ns();
    for (const auto& site : a.module->remote_call_sites()) {
      codegen::CallSiteDecision decision = gen.generate(site, level);
      ++pg.executions;
      if (opts_.cache_plans) ++pg.cache_misses;
      const std::uint32_t tag = decision.tag;
      program.sites.emplace(tag, std::move(decision));
    }
    const std::int64_t t1 = now_ns();
    pg.wall_ns += t1 - t0;
    trace_pass(PassId::PlanGen, t0, t1);
    if (opts_.cache_plans) plans_.insert(key, program.sites);
  }

  cumulative_ += program.stats;
  return program;
}

CompiledProgram PassManager::respecialize(const CompiledProgram& program,
                                          const ir::Module& module,
                                          const rmi::CallSiteProfile& profile,
                                          const RespecializeOptions& options) {
  std::scoped_lock lock(mu_);
  CompiledProgram out;
  out.level = program.level;
  out.options = program.options;
  out.fingerprint = module.fingerprint();
  if (out.fingerprint != program.fingerprint) {
    throw CompileError(
        "respecialize: module does not match the compiled program "
        "(fingerprint mismatch — the module changed; recompile instead)");
  }

  ModuleAnalyses& a = analyses_for(module, out.fingerprint,
                                   program.options.precise_cycles, out.stats);
  out.heap_nodes = a.heap->node_count();
  out.fixpoint_iterations = a.heap->iterations();

  codegen::PlanGenerator gen(
      *a.heap, cycles_of(a, program.options.precise_cycles), *a.escapes);
  PassStats& pg = out.stats.pass(PassId::PlanGen);

  for (const auto& site : a.module->remote_call_sites()) {
    const std::uint32_t tag = site.instr->callsite_tag;
    auto it = program.sites.find(tag);
    if (it == program.sites.end()) continue;  // site the program never had
    const codegen::CallSiteDecision& old = it->second;
    const rmi::CallSiteProfileRow* row = profile.row(tag);

    const bool has_reuse =
        old.plan != nullptr && (old.plan->reuse_args || old.plan->reuse_ret);
    const bool demote = row != nullptr && has_reuse && row->invocations > 0 &&
                        row->invocations <= options.cold_reuse_invocations;
    const bool promote = row != nullptr && old.plan != nullptr &&
                         old.plan->ret == nullptr && !old.batch_ack &&
                         row->remote_rpcs >= options.hot_ack_remote_rpcs;

    if (!demote && !promote) {
      // The profile agrees with the compile-time decision: clone, no pass.
      out.sites.emplace(tag, old.clone());
      continue;
    }
    const std::int64_t t0 = now_ns();
    codegen::CallSiteDecision fresh =
        gen.generate(site, demote ? demoted(program.level) : program.level);
    const std::int64_t t1 = now_ns();
    ++pg.executions;
    pg.wall_ns += t1 - t0;
    trace_pass(PassId::PlanGen, t0, t1);
    if (promote && !demote) fresh.batch_ack = true;
    out.sites.emplace(tag, std::move(fresh));
  }

  cumulative_ += out.stats;
  return out;
}

CompileStats PassManager::stats() const {
  std::scoped_lock lock(mu_);
  return cumulative_;
}

void PassManager::invalidate(std::uint64_t fingerprint) {
  std::scoped_lock lock(mu_);
  analyses_.erase(fingerprint);
  plans_.invalidate(fingerprint);
}

void PassManager::clear() {
  std::scoped_lock lock(mu_);
  analyses_.clear();
  plans_.clear();
  scratch_ = ModuleAnalyses{};
}

std::size_t PassManager::cached_modules() const {
  std::scoped_lock lock(mu_);
  return analyses_.size();
}

std::size_t PassManager::cached_plans() const {
  std::scoped_lock lock(mu_);
  return plans_.size();
}

}  // namespace rmiopt::driver
