#include "driver/compile.hpp"

#include "driver/pass_manager.hpp"

namespace rmiopt::driver {

CompiledProgram compile(const ir::Module& module, OptLevel level,
                        const CompileOptions& options) {
  PassManager::Options pm_options;
  pm_options.cache_analyses = false;
  pm_options.cache_plans = false;
  PassManager pm(pm_options);
  return pm.compile(module, level, options);
}

rmi::CompiledCallSite to_runtime_site(const CompiledProgram& program,
                                      std::uint32_t tag,
                                      std::uint32_t method_id) {
  const codegen::CallSiteDecision& decision = program.site(tag);
  rmi::CompiledCallSite site;
  site.plan = decision.plan->clone();
  site.method_id = method_id;
  site.heavy = program.level == OptLevel::Heavy;
  site.site_specific = codegen::site_specific(program.level);
  site.level = program.level;
  site.tag = tag;
  site.batch_replies = decision.batch_ack;
  return site;
}

}  // namespace rmiopt::driver
