#include "driver/compile.hpp"

namespace rmiopt::driver {

CompiledProgram compile(const ir::Module& module, OptLevel level,
                        const CompileOptions& options) {
  ir::verify(module);

  analysis::HeapAnalysis heap(module);
  heap.run();
  analysis::CycleAnalysis cycles(heap, options.precise_cycles);
  analysis::EscapeAnalysis escapes(heap);
  codegen::PlanGenerator gen(heap, cycles, escapes);

  CompiledProgram program;
  program.level = level;
  program.heap_nodes = heap.node_count();
  program.fixpoint_iterations = heap.iterations();
  for (const auto& site : module.remote_call_sites()) {
    codegen::CallSiteDecision decision = gen.generate(site, level);
    const std::uint32_t tag = decision.tag;
    program.sites.emplace(tag, std::move(decision));
  }
  return program;
}

rmi::CompiledCallSite to_runtime_site(const CompiledProgram& program,
                                      std::uint32_t tag,
                                      std::uint32_t method_id) {
  const codegen::CallSiteDecision& decision = program.site(tag);
  rmi::CompiledCallSite site;
  site.plan = decision.plan->clone();
  site.method_id = method_id;
  site.heavy = program.level == OptLevel::Heavy;
  site.site_specific = codegen::site_specific(program.level);
  site.level = program.level;
  return site;
}

}  // namespace rmiopt::driver
