// The compiler driver: runs the analysis pipeline over an IR module and
// produces, per optimization level, the compiled call sites the RMI
// runtime executes.
//
//   IR module --verify--> heap analysis (§2) --+--> cycle analysis (§3.2)
//                                              +--> escape analysis (§3.3)
//                                              +--> plan generation (§3.1)
//
// The pipeline itself lives in driver/pass_manager.hpp: each stage is a
// registered pass whose results are memoized under the module's content
// fingerprint.  The `compile()` convenience below runs a one-shot,
// non-caching pipeline (exactly the historical behaviour); callers that
// compile one module at several levels — or several identical modules —
// share analyses by going through a long-lived PassManager instead.
//
// The result maps each RemoteCall instruction's call-site *tag* to a
// CallSiteDecision; applications bind their runtime handlers to the tags
// via rmi::CompiledCallSite.
#pragma once

#include <map>
#include <string>

#include "codegen/plan_generator.hpp"
#include "driver/compile_stats.hpp"
#include "rmi/runtime.hpp"
#include "support/error.hpp"

namespace rmiopt::driver {

using codegen::OptLevel;

struct CompileOptions {
  // Enables the §7 future-work refinement: construction-order cycle
  // analysis that proves single-allocation-site linked lists acyclic
  // (see analysis/cycle_analysis.hpp).
  bool precise_cycles = false;
};

struct CompiledProgram {
  OptLevel level = OptLevel::Class;
  CompileOptions options;        // the options this program was built with
  std::uint64_t fingerprint = 0;  // ir::Module::fingerprint() of the input
  std::map<std::uint32_t, codegen::CallSiteDecision> sites;  // by tag

  // Analysis diagnostics.
  std::size_t heap_nodes = 0;
  std::size_t fixpoint_iterations = 0;

  // Per-pass wall time and cache activity of exactly this compile.
  CompileStats stats;

  // Tags arrive from application config wiring, so an unknown tag is a
  // recoverable configuration error, not an internal invariant violation.
  const codegen::CallSiteDecision& site(std::uint32_t tag) const {
    auto it = sites.find(tag);
    if (it == sites.end()) {
      throw CompileError("no compiled call site for tag " +
                         std::to_string(tag));
    }
    return it->second;
  }
};

// Verifies `module`, runs the analyses, and generates one plan per remote
// call site at `level`.  One-shot: nothing is cached across calls — see
// driver::PassManager for the shared-analysis path.
CompiledProgram compile(const ir::Module& module, OptLevel level,
                        const CompileOptions& options = {});

// Converts one compiled call site into the runtime's representation,
// binding the application's handler.  Throws CompileError on a tag the
// compiler never saw.
rmi::CompiledCallSite to_runtime_site(const CompiledProgram& program,
                                      std::uint32_t tag,
                                      std::uint32_t method_id);

}  // namespace rmiopt::driver
