// The compiler driver: runs the full analysis pipeline over an IR module
// and produces, per optimization level, the compiled call sites the RMI
// runtime executes.
//
//   IR module --verify--> heap analysis (§2) --+--> cycle analysis (§3.2)
//                                              +--> escape analysis (§3.3)
//                                              +--> plan generation (§3.1)
//
// The result maps each RemoteCall instruction's call-site *tag* to a
// CallSiteDecision; applications bind their runtime handlers to the tags
// via rmi::CompiledCallSite.
#pragma once

#include <map>

#include "codegen/plan_generator.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::driver {

using codegen::OptLevel;

struct CompileOptions {
  // Enables the §7 future-work refinement: construction-order cycle
  // analysis that proves single-allocation-site linked lists acyclic
  // (see analysis/cycle_analysis.hpp).
  bool precise_cycles = false;
};

struct CompiledProgram {
  OptLevel level = OptLevel::Class;
  std::map<std::uint32_t, codegen::CallSiteDecision> sites;  // by tag

  // Analysis diagnostics.
  std::size_t heap_nodes = 0;
  std::size_t fixpoint_iterations = 0;

  const codegen::CallSiteDecision& site(std::uint32_t tag) const {
    auto it = sites.find(tag);
    RMIOPT_CHECK(it != sites.end(),
                 "no compiled call site for tag " + std::to_string(tag));
    return it->second;
  }
};

// Verifies `module`, runs the analyses, and generates one plan per remote
// call site at `level`.
CompiledProgram compile(const ir::Module& module, OptLevel level,
                        const CompileOptions& options = {});

// Converts one compiled call site into the runtime's representation,
// binding the application's handler.
rmi::CompiledCallSite to_runtime_site(const CompiledProgram& program,
                                      std::uint32_t tag,
                                      std::uint32_t method_id);

}  // namespace rmiopt::driver
