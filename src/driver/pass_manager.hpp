// The compile pipeline as an explicit pass manager.
//
// Each stage of the driver pipeline is a registered *pass* with declared
// inputs:
//
//   pass            input                     cached artifact
//   ------------    ----------------------    -------------------------------
//   verify          module                    (verdict only — module is ok)
//   heap            module                    analysis::HeapAnalysis
//   cycle           heap                      analysis::CycleAnalysis
//   precise-cycles  heap                      analysis::CycleAnalysis(refined)
//   escape          heap                      analysis::EscapeAnalysis
//   plangen         heap+cycle+escape,        per-tag CallSiteDecision map
//                   level, options            (codegen::PlanCache)
//
// Results are memoized under ir::Module::fingerprint(), a content hash of
// the IR and its descriptor closure: two structurally identical modules
// share one cache entry, and compiling one module at all five paper levels
// runs each analysis exactly once.  Plan generation is additionally keyed
// by (level, precise_cycles) in codegen::PlanCache.  Cached and fresh
// compiles produce bit-identical plans — the cache stores what the
// generator produced and hands back deep clones.
//
// Lifetime contract: cached analyses reference the module they were built
// from (`const ir::Module&` members).  A module compiled through a caching
// PassManager must therefore outlive the manager — own the model and the
// manager together, or call invalidate()/clear() before dropping the
// module.  The non-caching configuration (used by driver::compile()) keeps
// nothing and imposes no such constraint beyond the compile call itself.
//
// Profile-guided re-specialization: respecialize() takes a compiled
// program plus the runtime's rmi::CallSiteProfile and re-runs *only* the
// plan-generation pass, and only for sites whose compile-time decision the
// observed profile contradicts (reuse machinery on a site invoked once;
// fire-and-forget ACK replies on a hot site).  Analyses are reused from
// the cache; untouched sites are cloned verbatim.  The per-compile
// CompileStats expose exactly which passes ran, so tests can assert the
// "recompiles only invalidated call sites" property by counting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "codegen/plan_cache.hpp"
#include "driver/compile.hpp"
#include "rmi/stats.hpp"
#include "trace/trace.hpp"

namespace rmiopt::analysis {
class HeapAnalysis;
class CycleAnalysis;
class EscapeAnalysis;
}  // namespace rmiopt::analysis

namespace rmiopt::driver {

// Thresholds for profile-guided re-specialization.
struct RespecializeOptions {
  // Demote: a site compiled with argument/return reuse (§3.3) whose
  // profile shows `0 < invocations <= cold_reuse_invocations` never
  // amortized its reuse cache — recompile it one level down
  // (SiteReuse -> Site, SiteReuseCycle -> SiteCycle).  Sites with zero
  // invocations carry no evidence and are left alone.
  std::uint64_t cold_reuse_invocations = 1;

  // Promote: a site whose return is elided (ACK-only replies) and whose
  // profile shows at least this many remote calls gets batch_ack — a
  // batching session may coalesce its ACKs past the payload threshold.
  std::uint64_t hot_ack_remote_rpcs = 1024;
};

class PassManager {
 public:
  struct Options {
    bool cache_analyses = true;  // memoize verify/heap/cycle/escape by fp
    bool cache_plans = true;     // memoize plan generation in a PlanCache
    // When set, every executed pass emits a CompilePass span (and every
    // cache hit a CompileCacheHit instant) on trace::kCompilerTrack,
    // stamped in real nanoseconds since this manager's construction.
    trace::Recorder* recorder = nullptr;
  };

  PassManager() : PassManager(Options()) {}
  explicit PassManager(const Options& options);
  ~PassManager();

  PassManager(const PassManager&) = delete;
  PassManager& operator=(const PassManager&) = delete;

  // Runs the pipeline (through the caches, where enabled) and returns the
  // compiled program.  program.stats records exactly this compile's pass
  // executions and cache activity.
  CompiledProgram compile(const ir::Module& module, OptLevel level,
                          const CompileOptions& options = {});

  // Re-specializes `program` against an observed runtime profile.  The
  // module must be the one `program` was compiled from (same fingerprint;
  // throws CompileError otherwise).  Only contradicted sites are
  // regenerated — out.stats.pass(PassId::PlanGen).executions equals the
  // number of such sites.  The result is never written to the plan cache:
  // it reflects one profile, not the module's content.
  CompiledProgram respecialize(const CompiledProgram& program,
                               const ir::Module& module,
                               const rmi::CallSiteProfile& profile,
                               const RespecializeOptions& options = {});

  // Cumulative stats across every compile()/respecialize() this manager ran.
  CompileStats stats() const;

  // Drops cached analyses and plans for one module fingerprint (e.g. the
  // module is about to be mutated or freed) — or everything.
  void invalidate(std::uint64_t fingerprint);
  void clear();

  std::size_t cached_modules() const;
  std::size_t cached_plans() const;

 private:
  // Every analysis artifact for one module fingerprint.  The analyses are
  // built against *module (the instance seen first); see the lifetime
  // contract above.
  struct ModuleAnalyses {
    const ir::Module* module = nullptr;
    bool verified = false;
    std::shared_ptr<analysis::HeapAnalysis> heap;
    std::shared_ptr<analysis::CycleAnalysis> cycles;
    std::shared_ptr<analysis::CycleAnalysis> precise_cycles;
    std::shared_ptr<analysis::EscapeAnalysis> escapes;
  };

  // Runs (or replays from cache) verify/heap/cycle/escape for `module`,
  // charging `stats`.  Returns the entry holding the shared artifacts.
  ModuleAnalyses& analyses_for(const ir::Module& module, std::uint64_t fp,
                               bool precise, CompileStats& stats);

  const analysis::CycleAnalysis& cycles_of(const ModuleAnalyses& a,
                                           bool precise) const;

  std::int64_t now_ns() const;  // real ns since construction
  void trace_pass(PassId id, std::int64_t start_ns, std::int64_t end_ns);
  void trace_hit(PassId id);

  mutable std::mutex mu_;
  Options opts_;
  std::int64_t epoch_ns_ = 0;  // steady-clock stamp at construction
  std::map<std::uint64_t, ModuleAnalyses> analyses_;
  ModuleAnalyses scratch_;  // the non-caching configuration's entry
  codegen::PlanCache plans_;
  CompileStats cumulative_;
};

}  // namespace rmiopt::driver
