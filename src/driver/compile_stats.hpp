// Per-compile and cumulative pipeline statistics.
//
// Kept free of heavy includes so apps and benches can thread a
// CompileStats through RunResult without pulling the whole driver in.
// One PassStats row per pipeline pass; `executions` counts actual pass
// runs (per call site for PlanGen, per module for the analyses),
// `cache_hits`/`cache_misses` count lookups against the pass manager's
// fingerprint-keyed caches, and `wall_ns` accumulates measured real time
// of the executions.  Counters are deterministic for a fixed compile
// sequence; only `wall_ns` varies run to run.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rmiopt::driver {

enum class PassId : std::uint8_t {
  Verify,         // structural IR checks (ir::verify)
  Heap,           // §2 interprocedural points-to fixpoint
  Cycle,          // §3.2 conservative cycle detection
  PreciseCycles,  // §7 construction-order refinement of Cycle
  Escape,         // §3.3 RMI escape analysis
  PlanGen,        // §3.1 per-call-site marshal plan generation
};
inline constexpr std::size_t kPassCount = 6;

constexpr std::string_view to_string(PassId p) {
  switch (p) {
    case PassId::Verify:
      return "verify";
    case PassId::Heap:
      return "heap";
    case PassId::Cycle:
      return "cycle";
    case PassId::PreciseCycles:
      return "precise-cycles";
    case PassId::Escape:
      return "escape";
    case PassId::PlanGen:
      return "plangen";
  }
  return "?";
}

struct PassStats {
  std::uint64_t executions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::int64_t wall_ns = 0;

  PassStats& operator+=(const PassStats& o) {
    executions += o.executions;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    wall_ns += o.wall_ns;
    return *this;
  }
};

struct CompileStats {
  std::array<PassStats, kPassCount> passes;
  std::uint64_t fixpoint_iterations = 0;  // heap-analysis iterations run

  PassStats& pass(PassId id) { return passes[static_cast<std::size_t>(id)]; }
  const PassStats& pass(PassId id) const {
    return passes[static_cast<std::size_t>(id)];
  }

  std::uint64_t total_executions() const {
    std::uint64_t n = 0;
    for (const PassStats& p : passes) n += p.executions;
    return n;
  }
  std::uint64_t total_hits() const {
    std::uint64_t n = 0;
    for (const PassStats& p : passes) n += p.cache_hits;
    return n;
  }
  std::uint64_t total_misses() const {
    std::uint64_t n = 0;
    for (const PassStats& p : passes) n += p.cache_misses;
    return n;
  }

  CompileStats& operator+=(const CompileStats& o) {
    for (std::size_t i = 0; i < kPassCount; ++i) passes[i] += o.passes[i];
    fixpoint_iterations += o.fixpoint_iterations;
    return *this;
  }
};

}  // namespace rmiopt::driver
