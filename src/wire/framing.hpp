// Physical frame encoding: the byte image a transport puts on the wire.
//
// The session layer hands the transport *frames* — one or more
// wire::Messages travelling together between the same pair of machines —
// and a byte-oriented transport (SimTransport) serializes them with the
// functions here.  The encoding is explicit field-by-field little-endian
// (never a struct memcpy), so the frame image is independent of struct
// padding and a decoder can detect truncation:
//
//   frame   := tag u8            (kSingleFrameTag | kBatchFrameTag)
//              checksum u32      (FNV-1a over every following byte)
//              link_seq varint   (per directed src->dst link, from 0)
//              count    varint   (batch frames only)
//              count x message
//   message := kind u8
//              callsite_id u32, target_export u32, seq u32
//              source u16, dest u16
//              payload_len varint, payload bytes
//
// The checksum makes corruption *detectable*: a receiver verifies it
// before trusting any length or kind field, rejects the frame with a
// DecodeError, and NACKs so the sender retransmits — a corrupted frame is
// never decoded into the runtime.  decode_frame throws only typed errors
// (rmiopt::DecodeError) on any malformed input; it never aborts.
//
// Note the *charged* size of a message on the simulated wire stays
// Message::wire_size() (header struct + payload) for cost-model and
// statistics purposes; the physical image produced here is a transport
// detail and may be a few bytes smaller or larger.
#pragma once

#include <vector>

#include "support/bytebuffer.hpp"
#include "wire/protocol.hpp"

namespace rmiopt::wire {

inline constexpr std::uint8_t kSingleFrameTag = 0xF1;
inline constexpr std::uint8_t kBatchFrameTag = 0xF2;

// A unit of transmission on one directed machine-to-machine link.  All
// messages in a frame share one network traversal (one latency, one send
// descriptor) — this is what makes the session layer's ACK coalescing
// (§3.1) pay off.
struct Frame {
  std::uint64_t link_seq = 0;
  std::vector<Message> messages;

  // Wire bytes the cost model charges for this frame (the sum of the
  // member messages' simulated sizes).
  std::size_t charged_bytes() const {
    std::size_t n = 0;
    for (const Message& m : messages) n += m.wire_size();
    return n;
  }
};

// Serializes `frame` into its physical byte image.  The frame must carry
// at least one message.
ByteBuffer encode_frame(const Frame& frame);

// Same image, written into `out` (cleared first).  The vector's capacity
// is preserved across the call, so a pooled frame buffer
// (support::FramePool block) recycles its allocation — this is the
// zero-copy receive path's NIC-ring write.
void encode_frame_into(const Frame& frame, std::vector<std::uint8_t>& out);

// Parses a byte image produced by encode_frame, consuming the rest of
// `buf` from its read cursor (the checksum covers everything up to the
// end, so one buffer carries exactly one frame).  Throws
// rmiopt::DecodeError on an unknown tag, a checksum mismatch, or a
// truncated/malformed image.
//
// If `buf` is a pinned view (ByteBuffer::view over a pooled frame image),
// every decoded message's payload is itself a pinned view into the same
// image — no per-message delivery copy — and the frame buffer recycles
// only when the last payload (and any object still borrowing spans from
// it) lets go.  An owned `buf` keeps the historical copy-out behavior.
Frame decode_frame(ByteBuffer& buf);

}  // namespace rmiopt::wire
