// The session layer: one Session per directed machine-to-machine link.
//
// Sits between the RMI runtime (which produces wire::Messages) and the
// transport (which moves Frames).  The session owns three link-level
// concerns the transport and the runtime should not care about:
//
//  * sequencing — every frame carries a per-link sequence number, stamped
//    here; receivers run the sequence through a DedupWindow so duplicated
//    and stale (reordered) frames are discarded instead of redelivered;
//  * batched send queues — the §3.1 ACK optimization generalized: small
//    reply/ACK messages may be held back and coalesced into one frame
//    with the next flush trigger, paying the per-message network latency
//    and GM send-descriptor cost once per *frame* instead of once per
//    message;
//  * reliability — a stop-and-wait ARQ: the sink reports whether the
//    frame was delivered (implicit ACK), timed out (lost in transit), or
//    was NACKed (the receiver's checksum rejected it); the session
//    charges the virtual retransmit timer — exponential backoff for
//    timeouts, one control round trip for NACKs — and retransmits until
//    the frame lands or `max_retransmits` is exhausted, at which point it
//    declares the link dead with a ProtocolError.
//
// Coalescing is OFF by default (max_batch_messages = 1): the paper's
// model sends every message immediately, and synchronous RMI callers
// block on their replies, so holding a reply back is only sound when the
// application keeps several calls in flight or flushes explicitly.  With
// a fault-free transport the ARQ is pure pass-through: every frame is
// delivered on the first attempt and no timer is ever charged, so the
// paper's deterministic numbers are untouched bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>

#include "trace/trace.hpp"
#include "wire/framing.hpp"

namespace rmiopt::wire {

struct SessionConfig {
  // Maximum messages coalesced into one frame.  1 = transmit every
  // message immediately (paper semantics, default).
  std::size_t max_batch_messages = 1;
  // Only replies (Return/Ack/Exception) with payloads at most this large
  // are held back for coalescing; Call requests and bulky replies act as
  // flush triggers and leave in the same frame as anything queued.
  std::size_t max_batch_payload = 256;

  // ---- reliability (stop-and-wait ARQ) ------------------------------------
  // Retransmits per frame before the link is declared dead.
  std::size_t max_retransmits = 10;
  // Initial virtual retransmit timer; doubles per consecutive timeout up
  // to `max_backoff_doublings` (≈ 2 * one-way latency + dispatch slack on
  // the modelled GM network).
  std::int64_t retransmit_timeout_ns = 60'000;
  std::size_t max_backoff_doublings = 4;
  // Virtual cost of a NACK round trip (the receiver rejected a corrupted
  // frame and said so; the sender need not wait out the full timer).
  std::int64_t nack_turnaround_ns = 30'000;

  bool batching() const { return max_batch_messages > 1; }
};

// What became of one transmission attempt of a frame.  The simulated
// network is synchronous, so the acknowledgement that a real link would
// carry as a control frame is modelled as the sink's return value; the
// *cost* of waiting for it is charged in virtual time by the session.
enum class SendOutcome {
  Delivered,  // frame reached the receiver intact (implicit ACK)
  Timeout,    // frame (or its ACK) lost; sender waits out the timer
  Nacked,     // receiver rejected a corrupted frame and NACKed promptly
};

// Receives sealed frames under the session lock, so frames of one link
// reach the transport in link_seq order.  Called repeatedly with the
// *same* frame on retransmission.
using FrameSink = std::function<SendOutcome(const Frame&)>;

// Charges virtual nanoseconds to the sending machine's clock (the
// session is a wire-layer object and has no machine of its own).
using ChargeFn = std::function<void(std::int64_t)>;

class Session {
 public:
  Session(std::uint16_t src, std::uint16_t dst, const SessionConfig& cfg,
          ChargeFn charge = nullptr)
      : src_(src), dst_(dst), cfg_(cfg), charge_(std::move(charge)) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint16_t src() const { return src_; }
  std::uint16_t dst() const { return dst_; }

  // Queues `msg` and emits zero or more ready frames into `sink`,
  // retransmitting each until the sink reports delivery.  With batching
  // off every post emits exactly one single-message frame.  Throws
  // ProtocolError when a frame exhausts its retransmit budget.
  void post(Message msg, const FrameSink& sink);

  // Forces any held-back messages out as one frame.
  void flush(const FrameSink& sink);

  // Messages currently held in the coalescing queue (introspection).
  std::size_t queued() const;

  // Frames this session had to retransmit (0 on a healthy link).
  std::uint64_t retransmits() const;

  // Attaches a trace recorder (nullptr detaches).  `now_ns` supplies the
  // sending machine's virtual clock — the session is a wire-layer object
  // and has no clock of its own.  Call before traffic flows.
  void set_trace(trace::Recorder* recorder,
                 std::function<std::int64_t()> now_ns);

 private:
  bool coalescible(const Message& msg) const;
  void seal_and_emit(const FrameSink& sink);  // callers hold mu_
  void trace_event(trace::EventKind kind, std::uint64_t link_seq,
                   std::int64_t dur_ns, std::uint64_t bytes,
                   std::uint32_t count) const;

  const std::uint16_t src_;
  const std::uint16_t dst_;
  const SessionConfig cfg_;
  const ChargeFn charge_;
  trace::Recorder* recorder_ = nullptr;
  std::function<std::int64_t()> now_ns_;

  mutable std::mutex mu_;
  std::uint64_t next_link_seq_ = 0;
  std::uint64_t retransmits_ = 0;
  std::vector<Message> queue_;
};

// Receive-side companion of the session's link sequencing: a sliding
// window that classifies each arriving link_seq.  Fresh sequences are
// delivered; duplicates (an ARQ retransmit of something already received,
// or an injected duplicate) and stale sequences (a reordered copy
// arriving after the window moved past it) are discarded by the
// transport and only counted.  One instance per directed link, owned by
// the receiving machine.
//
// When the out-of-order set outgrows `capacity`, the horizon is *forced*
// forward.  A forced slide can jump over sequence-number gaps — frames
// that have not arrived yet, merely delayed.  Those skipped-over
// sequences are remembered (bounded by the same capacity) so a delayed
// frame in the gap is still classified Fresh and delivered exactly once,
// instead of being misreported as Stale and silently dropped until the
// sender's retransmit budget dies.
class DedupWindow {
 public:
  enum class Verdict { Fresh, Duplicate, Stale };

  explicit DedupWindow(std::size_t capacity = 512) : capacity_(capacity) {}

  Verdict accept(std::uint64_t seq) {
    if (seq < horizon_) {
      // Below the horizon: either this sequence was delivered (or its
      // skipped-entry expired) — genuinely stale — or the horizon was
      // forced past it before it ever arrived.  The latter is a
      // merely-delayed frame: deliver it now, exactly once.
      auto it = skipped_.find(seq);
      if (it == skipped_.end()) return Verdict::Stale;
      skipped_.erase(it);
      ++late_recoveries_;
      return Verdict::Fresh;
    }
    if (!seen_.insert(seq).second) return Verdict::Duplicate;
    // Advance the horizon over any now-contiguous prefix, then bound the
    // out-of-order set by sliding the horizon forcibly.
    while (!seen_.empty() && *seen_.begin() == horizon_) {
      seen_.erase(seen_.begin());
      ++horizon_;
    }
    while (seen_.size() > capacity_) {
      ++forced_slides_;
      const std::uint64_t next = *seen_.begin();
      // Remember the skipped-over (never-delivered) sequences in the gap,
      // keeping at most `capacity_` of the newest; anything older expires
      // and becomes permanently stale (bounded memory beats unbounded
      // recovery — the ARQ gives up on such frames anyway).
      const std::uint64_t gap = next - horizon_;
      const std::uint64_t keep = std::min<std::uint64_t>(gap, capacity_);
      skipped_expired_ += gap - keep;
      for (std::uint64_t s = next - keep; s < next; ++s) skipped_.insert(s);
      horizon_ = next + 1;
      seen_.erase(seen_.begin());
      while (skipped_.size() > capacity_) {
        skipped_.erase(skipped_.begin());
        ++skipped_expired_;
      }
    }
    return Verdict::Fresh;
  }

  // Everything below this sequence was delivered, recovered, or expired.
  std::uint64_t horizon() const { return horizon_; }

  // Times the horizon was forced past the oldest out-of-order entry.
  std::uint64_t forced_slides() const { return forced_slides_; }
  // Delayed frames below a forced horizon that were still delivered.
  std::uint64_t late_recoveries() const { return late_recoveries_; }
  // Skipped-over sequences that aged out before (re)arriving.
  std::uint64_t skipped_expired() const { return skipped_expired_; }

 private:
  const std::size_t capacity_;
  std::uint64_t horizon_ = 0;
  std::uint64_t forced_slides_ = 0;
  std::uint64_t late_recoveries_ = 0;
  std::uint64_t skipped_expired_ = 0;
  std::set<std::uint64_t> seen_;     // received seqs at/above the horizon
  std::set<std::uint64_t> skipped_;  // forced-past, never-delivered seqs
};

}  // namespace rmiopt::wire
