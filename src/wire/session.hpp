// The session layer: one Session per directed machine-to-machine link.
//
// Sits between the RMI runtime (which produces wire::Messages) and the
// transport (which moves Frames).  The session owns two link-level
// concerns the transport and the runtime should not care about:
//
//  * sequencing — every frame carries a per-link sequence number, stamped
//    here and validated by byte-oriented transports on receive, so
//    reordering bugs surface immediately;
//  * batched send queues — the §3.1 ACK optimization generalized: small
//    reply/ACK messages may be held back and coalesced into one frame
//    with the next flush trigger, paying the per-message network latency
//    and GM send-descriptor cost once per *frame* instead of once per
//    message.
//
// Coalescing is OFF by default (max_batch_messages = 1): the paper's
// model sends every message immediately, and synchronous RMI callers
// block on their replies, so holding a reply back is only sound when the
// application keeps several calls in flight or flushes explicitly.
#pragma once

#include <functional>
#include <mutex>
#include <optional>

#include "wire/framing.hpp"

namespace rmiopt::wire {

struct SessionConfig {
  // Maximum messages coalesced into one frame.  1 = transmit every
  // message immediately (paper semantics, default).
  std::size_t max_batch_messages = 1;
  // Only replies (Return/Ack/Exception) with payloads at most this large
  // are held back for coalescing; Call requests and bulky replies act as
  // flush triggers and leave in the same frame as anything queued.
  std::size_t max_batch_payload = 256;

  bool batching() const { return max_batch_messages > 1; }
};

// Receives sealed frames under the session lock, so frames of one link
// reach the transport in link_seq order.
using FrameSink = std::function<void(Frame)>;

class Session {
 public:
  Session(std::uint16_t src, std::uint16_t dst, const SessionConfig& cfg)
      : src_(src), dst_(dst), cfg_(cfg) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint16_t src() const { return src_; }
  std::uint16_t dst() const { return dst_; }

  // Queues `msg` and emits zero or more ready frames into `sink`.  With
  // batching off every post emits exactly one single-message frame.
  void post(Message msg, const FrameSink& sink);

  // Forces any held-back messages out as one frame.
  void flush(const FrameSink& sink);

  // Messages currently held in the coalescing queue (introspection).
  std::size_t queued() const;

 private:
  bool coalescible(const Message& msg) const;
  void seal_and_emit(const FrameSink& sink);  // callers hold mu_

  const std::uint16_t src_;
  const std::uint16_t dst_;
  const SessionConfig cfg_;

  mutable std::mutex mu_;
  std::uint64_t next_link_seq_ = 0;
  std::vector<Message> queue_;
};

}  // namespace rmiopt::wire
