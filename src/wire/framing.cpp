#include "wire/framing.hpp"

#include "support/error.hpp"

namespace rmiopt::wire {

namespace {

void encode_message(ByteBuffer& out, const Message& msg) {
  out.put_u8(static_cast<std::uint8_t>(msg.header.kind));
  out.put_u32(msg.header.callsite_id);
  out.put_u32(msg.header.target_export);
  out.put_u32(msg.header.seq);
  out.put(msg.header.source_machine);
  out.put(msg.header.dest_machine);
  const auto payload = msg.payload.contents();
  out.put_varint(payload.size());
  out.put_bytes(payload.data(), payload.size());
}

Message decode_message(ByteBuffer& in) {
  Message msg;
  const std::uint8_t kind = in.get_u8();
  RMIOPT_CHECK(kind <= static_cast<std::uint8_t>(MsgKind::Exception),
               "frame carries unknown message kind");
  msg.header.kind = static_cast<MsgKind>(kind);
  msg.header.callsite_id = in.get_u32();
  msg.header.target_export = in.get_u32();
  msg.header.seq = in.get_u32();
  msg.header.source_machine = in.get<std::uint16_t>();
  msg.header.dest_machine = in.get<std::uint16_t>();
  const std::uint64_t len = in.get_varint();
  RMIOPT_CHECK(len <= in.remaining(), "truncated frame: payload cut short");
  std::vector<std::uint8_t> payload(len);
  in.get_bytes(payload.data(), payload.size());
  msg.payload = ByteBuffer(std::move(payload));
  return msg;
}

}  // namespace

ByteBuffer encode_frame(const Frame& frame) {
  RMIOPT_CHECK(!frame.messages.empty(), "cannot encode an empty frame");
  ByteBuffer out;
  if (frame.messages.size() == 1) {
    out.put_u8(kSingleFrameTag);
    out.put_varint(frame.link_seq);
    encode_message(out, frame.messages.front());
  } else {
    out.put_u8(kBatchFrameTag);
    out.put_varint(frame.link_seq);
    out.put_varint(frame.messages.size());
    for (const Message& m : frame.messages) encode_message(out, m);
  }
  return out;
}

Frame decode_frame(ByteBuffer& buf) {
  RMIOPT_CHECK(buf.remaining() > 0, "truncated frame: empty image");
  Frame frame;
  const std::uint8_t tag = buf.get_u8();
  frame.link_seq = buf.get_varint();
  std::uint64_t count = 1;
  if (tag == kBatchFrameTag) {
    count = buf.get_varint();
    RMIOPT_CHECK(count >= 1, "malformed frame: empty batch");
    // Each message needs at least its fixed header bytes; reject counts
    // the remaining image cannot possibly satisfy before allocating.
    RMIOPT_CHECK(count <= buf.remaining() / 17 + 1,
                 "truncated frame: batch count exceeds image");
  } else {
    RMIOPT_CHECK(tag == kSingleFrameTag, "unknown frame tag");
  }
  frame.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    frame.messages.push_back(decode_message(buf));
  }
  return frame;
}

}  // namespace rmiopt::wire
