#include "wire/framing.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

namespace rmiopt::wire {

namespace {

std::uint32_t image_checksum(const std::uint8_t* data, std::size_t len) {
  const std::uint64_t h = fnv1a(data, len);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// A deadline is present on the wire only when set, signalled by a flag
// bit that never reaches MessageHeader::flags (it is an encoding detail).
constexpr std::uint8_t kWireFlagDeadline = 0x80;

void encode_message(ByteBuffer& out, const Message& msg) {
  out.put_u8(static_cast<std::uint8_t>(msg.header.kind));
  out.put_u32(msg.header.callsite_id);
  out.put_u32(msg.header.target_export);
  out.put_u32(msg.header.seq);
  out.put(msg.header.source_machine);
  out.put(msg.header.dest_machine);
  const bool has_deadline = msg.header.deadline_ns != 0;
  out.put_u8(msg.header.flags | (has_deadline ? kWireFlagDeadline : 0));
  if (has_deadline) {
    out.put_varint(static_cast<std::uint64_t>(msg.header.deadline_ns));
  }
  if (msg.gathered) {
    // Gathered payload: frame the segment list in order.  This *is* the
    // NIC-boundary concatenation — by construction the image is identical
    // to what the contiguous path would have produced.
    out.put_varint(msg.gathered->size());
    msg.gathered->for_each_segment(
        [&](const std::uint8_t* d, std::size_t n) { out.put_bytes(d, n); });
    return;
  }
  const auto payload = msg.payload.contents();
  out.put_varint(payload.size());
  out.put_bytes(payload.data(), payload.size());
}

Message decode_message(ByteBuffer& in) {
  Message msg;
  const std::uint8_t kind = in.get_u8();
  RMIOPT_CHECK(kind <= static_cast<std::uint8_t>(MsgKind::Reject),
               "frame carries unknown message kind");
  msg.header.kind = static_cast<MsgKind>(kind);
  msg.header.callsite_id = in.get_u32();
  msg.header.target_export = in.get_u32();
  msg.header.seq = in.get_u32();
  msg.header.source_machine = in.get<std::uint16_t>();
  msg.header.dest_machine = in.get<std::uint16_t>();
  const std::uint8_t flags = in.get_u8();
  msg.header.flags = flags & ~kWireFlagDeadline;
  if ((flags & kWireFlagDeadline) != 0) {
    const std::uint64_t deadline = in.get_varint();
    RMIOPT_CHECK(deadline <= static_cast<std::uint64_t>(INT64_MAX),
                 "malformed frame: deadline out of range");
    msg.header.deadline_ns = static_cast<std::int64_t>(deadline);
    RMIOPT_CHECK(msg.header.deadline_ns != 0,
                 "malformed frame: deadline flag without deadline");
  }
  const std::uint64_t len = in.get_varint();
  RMIOPT_CHECK(len <= in.remaining(), "truncated frame: payload cut short");
  if (in.pin() != nullptr) {
    // Zero-copy delivery: the payload is a pinned window into the pooled
    // frame image (all messages of a batch frame share one pin).
    msg.payload = ByteBuffer::view(in.view_bytes(len), len, in.pin());
  } else {
    std::vector<std::uint8_t> payload(len);
    in.get_bytes(payload.data(), payload.size());
    msg.payload = ByteBuffer(std::move(payload));
  }
  return msg;
}

Frame decode_frame_body(ByteBuffer& buf) {
  if (buf.remaining() == 0) {
    throw DecodeError("truncated frame: empty image");
  }
  const std::uint8_t tag = buf.get_u8();
  if (tag != kSingleFrameTag && tag != kBatchFrameTag) {
    throw DecodeError("unknown frame tag");
  }
  // Verify the checksum over the whole remainder before trusting a single
  // length or kind field of it.
  const std::uint32_t declared = buf.get_u32();
  const auto bytes = buf.contents();
  const std::uint32_t actual =
      image_checksum(bytes.data() + buf.read_pos(), buf.remaining());
  if (declared != actual) {
    throw DecodeError("frame checksum mismatch: image corrupted in transit");
  }

  Frame frame;
  frame.link_seq = buf.get_varint();
  std::uint64_t count = 1;
  if (tag == kBatchFrameTag) {
    count = buf.get_varint();
    RMIOPT_CHECK(count >= 1, "malformed frame: empty batch");
    // Each message needs at least its fixed header bytes; reject counts
    // the remaining image cannot possibly satisfy before allocating.
    RMIOPT_CHECK(count <= buf.remaining() / 17 + 1,
                 "truncated frame: batch count exceeds image");
  }
  frame.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    frame.messages.push_back(decode_message(buf));
  }
  RMIOPT_CHECK(buf.remaining() == 0,
               "malformed frame: trailing bytes after last message");
  return frame;
}

}  // namespace

namespace {

void encode_frame_impl(const Frame& frame, ByteBuffer& out) {
  RMIOPT_CHECK(!frame.messages.empty(), "cannot encode an empty frame");
  ByteBuffer body;
  body.put_varint(frame.link_seq);
  if (frame.messages.size() == 1) {
    encode_message(body, frame.messages.front());
  } else {
    body.put_varint(frame.messages.size());
    for (const Message& m : frame.messages) encode_message(body, m);
  }
  out.put_u8(frame.messages.size() == 1 ? kSingleFrameTag : kBatchFrameTag);
  const auto body_bytes = body.contents();
  out.put_u32(image_checksum(body_bytes.data(), body_bytes.size()));
  out.put_bytes(body_bytes.data(), body_bytes.size());
}

}  // namespace

ByteBuffer encode_frame(const Frame& frame) {
  ByteBuffer out;
  encode_frame_impl(frame, out);
  return out;
}

void encode_frame_into(const Frame& frame, std::vector<std::uint8_t>& out) {
  // Round-trip the vector through a ByteBuffer so the pooled capacity is
  // reused rather than reallocated.
  out.clear();
  ByteBuffer buf(std::move(out));
  encode_frame_impl(frame, buf);
  out = std::move(buf).take();
}

Frame decode_frame(ByteBuffer& buf) {
  // Untrusted input: collapse every failure mode (underflow, bad varint,
  // unknown kind, checksum mismatch) into the one typed, recoverable
  // error the reliability layer handles.
  try {
    return decode_frame_body(buf);
  } catch (const DecodeError&) {
    throw;
  } catch (const Error& e) {
    throw DecodeError(e.what());
  }
}

}  // namespace rmiopt::wire
