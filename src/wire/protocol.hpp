// Wire protocol: message framing and the object-stream tag set.
//
// Three protocol flavours coexist, mirroring the paper's three serializer
// generations:
//
//  * HEAVY  (Sun-RMI-like, used by the introspective serializer): every
//    object is preceded by its full class *name*; the receiver resolves the
//    name to a descriptor for every single object.
//  * COMPACT (class-specific serializers, KaRMI/Manta-style): every object
//    is preceded by a varint class *id* — "a single integer in
//    Manta-JavaParty" that the receiver hashes to a vtable.
//  * BARE   (call-site-specific serializers, this paper): no per-object
//    type information at all; both sides execute the same generated plan,
//    so the stream contains only data, array lengths, and — when the
//    compiler could not prove acyclicity — cycle tags/handles.
#pragma once

#include <cstdint>

#include "support/bytebuffer.hpp"

namespace rmiopt::wire {

enum class MsgKind : std::uint8_t {
  Call,       // request: payload = serialized arguments
  Return,     // response with serialized return value
  Ack,        // response without a value (return elided at the call site)
  Exception,  // response carrying a remote exception message
  Heartbeat,  // liveness probe (failure detector); no payload, no reply
};

// Object-stream tags.  BARE streams use Ref* tags only where cycle
// detection is on; where the compiler proved acyclicity no tags appear.
enum ObjTag : std::uint8_t {
  kTagNull = 0,
  kTagInline = 1,  // object data follows
  kTagHandle = 2,  // varint back-reference to an already-sent object
};

struct MessageHeader {
  MsgKind kind = MsgKind::Call;
  std::uint32_t callsite_id = 0;    // selects the (un)marshaler pair
  std::uint32_t target_export = 0;  // exported object id on the callee
  std::uint32_t seq = 0;            // request/reply matching
  std::uint16_t source_machine = 0;
  std::uint16_t dest_machine = 0;
};

struct Message {
  MessageHeader header;
  ByteBuffer payload;

  // Sender-side only (never framed onto the wire): the compiler marked
  // this reply as batchable — a profile-guided promotion of the §3.1 ACK
  // optimization.  A *batching* session may hold it back for coalescing
  // even past its payload-size threshold; the default non-batching
  // session ignores it.
  bool coalesce_hint = false;

  // Total bytes this message occupies on the (simulated) wire.
  std::size_t wire_size() const {
    return sizeof(MessageHeader) + payload.size();
  }
};

}  // namespace rmiopt::wire
