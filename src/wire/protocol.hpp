// Wire protocol: message framing and the object-stream tag set.
//
// Three protocol flavours coexist, mirroring the paper's three serializer
// generations:
//
//  * HEAVY  (Sun-RMI-like, used by the introspective serializer): every
//    object is preceded by its full class *name*; the receiver resolves the
//    name to a descriptor for every single object.
//  * COMPACT (class-specific serializers, KaRMI/Manta-style): every object
//    is preceded by a varint class *id* — "a single integer in
//    Manta-JavaParty" that the receiver hashes to a vtable.
//  * BARE   (call-site-specific serializers, this paper): no per-object
//    type information at all; both sides execute the same generated plan,
//    so the stream contains only data, array lengths, and — when the
//    compiler could not prove acyclicity — cycle tags/handles.
#pragma once

#include <cstdint>
#include <memory>

#include "support/bytebuffer.hpp"
#include "support/gather_buffer.hpp"

namespace rmiopt::wire {

enum class MsgKind : std::uint8_t {
  Call,       // request: payload = serialized arguments
  Return,     // response with serialized return value
  Ack,        // response without a value (return elided at the call site)
  Exception,  // response carrying a remote exception message
  Heartbeat,  // liveness probe (failure detector); no payload, no reply
  Cancel,     // best-effort cancellation of an in-flight Call (same seq)
  Reject,     // typed refusal: payload = RejectCode u8 + reason string
};

// Why a callee refused (or abandoned) a call without running its handler.
// Travels as the first payload byte of a Reject message; the caller maps
// it back to the matching typed exception (rmi::DeadlineExceeded,
// rmi::Overload, rmi::Cancelled).
enum class RejectCode : std::uint8_t {
  DeadlineExceeded = 1,  // the call's virtual-time deadline had passed
  Overload = 2,          // admission control shed the call
  Cancelled = 3,         // the caller cancelled; the reply was abandoned
};

// Header flag bits (MessageHeader::flags).
inline constexpr std::uint8_t kFlagOneway = 0x01;  // fire-and-forget Call:
                                                   // the callee sends no
                                                   // reply of any kind

// Object-stream tags.  BARE streams use Ref* tags only where cycle
// detection is on; where the compiler proved acyclicity no tags appear.
enum ObjTag : std::uint8_t {
  kTagNull = 0,
  kTagInline = 1,  // object data follows
  kTagHandle = 2,  // varint back-reference to an already-sent object
};

struct MessageHeader {
  MsgKind kind = MsgKind::Call;
  std::uint32_t callsite_id = 0;    // selects the (un)marshaler pair
  std::uint32_t target_export = 0;  // exported object id on the callee
  std::uint32_t seq = 0;            // request/reply matching
  std::uint16_t source_machine = 0;
  std::uint16_t dest_machine = 0;
  std::uint8_t flags = 0;           // kFlag* bits
  // Absolute virtual-time deadline (ns) the caller attached, 0 = none.
  // The callee refuses to *start* a call whose deadline has passed
  // (Reject/DeadlineExceeded) instead of computing a reply nobody will
  // read; nested calls inherit the remaining budget minus a slack.
  std::int64_t deadline_ns = 0;
};

// The header bytes the cost model charges per message on the simulated
// wire.  Frozen at the pre-deadline layout (kind u8 + 3 ids u32 + 2
// machine u16, padded to 4): the flags byte rides free and a deadline is
// charged separately, so traffic that carries neither — everything under
// the default configuration — prices exactly as it always has.
inline constexpr std::size_t kChargedHeaderBytes = 20;

struct Message {
  MessageHeader header;
  ByteBuffer payload;

  // Scatter-gather payload (send side only; null on every received
  // message — transports materialize at the NIC boundary).  When set,
  // `payload` is empty and the wire image of the payload is the in-order
  // concatenation of the gather list's segments.  Shared, not cloned, by
  // Message/Frame copies (reply cache, ARQ retransmits, fault-plan
  // duplicates): once sealed the buffer is immutable, so every copy
  // frames byte-identical images.
  std::shared_ptr<support::GatherBuffer> gathered;

  // Sender-side only (never framed onto the wire): the compiler marked
  // this reply as batchable — a profile-guided promotion of the §3.1 ACK
  // optimization.  A *batching* session may hold it back for coalescing
  // even past its payload-size threshold; the default non-batching
  // session ignores it.
  bool coalesce_hint = false;

  // Payload length regardless of representation (contiguous or gathered).
  std::size_t payload_size() const {
    return gathered ? gathered->size() : payload.size();
  }

  // Pin/fold any borrowed spans so the payload image can no longer change.
  // Must run before the message escapes the serializing call; idempotent.
  void seal_gathered() {
    if (gathered) gathered->seal();
  }

  // Total bytes this message occupies on the (simulated) wire.  A call
  // carrying a deadline pays for the extra header field; default traffic
  // (deadline_ns == 0) is priced exactly as before deadlines existed.
  std::size_t wire_size() const {
    return kChargedHeaderBytes + (header.deadline_ns != 0 ? 8 : 0) +
           payload_size();
  }
};

}  // namespace rmiopt::wire
