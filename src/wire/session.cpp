#include "wire/session.hpp"

#include <string>

#include "support/error.hpp"

namespace rmiopt::wire {

bool Session::coalescible(const Message& msg) const {
  return msg.header.kind != MsgKind::Call &&
         msg.payload.size() <= cfg_.max_batch_payload;
}

void Session::seal_and_emit(const FrameSink& sink) {
  if (queue_.empty()) return;
  Frame frame;
  frame.link_seq = next_link_seq_++;
  frame.messages = std::move(queue_);
  queue_.clear();

  // Stop-and-wait ARQ.  The sink's return value is the (implicit) ACK or
  // NACK; the waiting it stands for is charged in virtual time.  A
  // healthy link delivers on the first attempt and pays nothing here.
  std::size_t doublings = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    const SendOutcome out = sink(frame);
    if (out == SendOutcome::Delivered) return;
    if (attempt >= cfg_.max_retransmits) {
      throw ProtocolError(
          "link " + std::to_string(src_) + "->" + std::to_string(dst_) +
          " dead: frame " + std::to_string(frame.link_seq) +
          " undelivered after " + std::to_string(attempt + 1) + " attempts");
    }
    ++retransmits_;
    if (out == SendOutcome::Nacked) {
      // The receiver told us promptly; pay one control round trip.
      if (charge_) charge_(cfg_.nack_turnaround_ns);
    } else {
      // Silence: wait out the timer, backing off exponentially.
      if (charge_) charge_(cfg_.retransmit_timeout_ns << doublings);
      if (doublings < cfg_.max_backoff_doublings) ++doublings;
    }
  }
}

void Session::post(Message msg, const FrameSink& sink) {
  RMIOPT_CHECK(msg.header.source_machine == src_ &&
                   msg.header.dest_machine == dst_,
               "message posted to the wrong session");
  std::scoped_lock lock(mu_);
  // The queue is emitted in posting order, so appending before deciding
  // whether to transmit preserves the per-link FIFO the inbox relies on.
  const bool hold = cfg_.batching() && coalescible(msg);
  queue_.push_back(std::move(msg));
  if (hold && queue_.size() < cfg_.max_batch_messages) return;
  seal_and_emit(sink);
}

void Session::flush(const FrameSink& sink) {
  std::scoped_lock lock(mu_);
  seal_and_emit(sink);
}

std::size_t Session::queued() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

std::uint64_t Session::retransmits() const {
  std::scoped_lock lock(mu_);
  return retransmits_;
}

}  // namespace rmiopt::wire
