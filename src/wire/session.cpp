#include "wire/session.hpp"

#include <string>

#include "support/error.hpp"

namespace rmiopt::wire {

bool Session::coalescible(const Message& msg) const {
  return msg.header.kind != MsgKind::Call &&
         (msg.payload_size() <= cfg_.max_batch_payload || msg.coalesce_hint);
}

void Session::trace_event(trace::EventKind kind, std::uint64_t link_seq,
                          std::int64_t dur_ns, std::uint64_t bytes,
                          std::uint32_t count) const {
  if (recorder_ == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.track = trace::TrackKind::Link;
  e.machine = src_;
  e.peer = dst_;
  e.start_ns = now_ns_ ? now_ns_() : 0;
  // Spans cover the charged wait that *ended* now: shift the start back.
  if (dur_ns > 0) e.start_ns -= dur_ns;
  e.dur_ns = dur_ns;
  e.seq = static_cast<std::uint32_t>(link_seq);
  e.bytes = bytes;
  e.count = count;
  recorder_->record(e);
}

void Session::seal_and_emit(const FrameSink& sink) {
  if (queue_.empty()) return;
  Frame frame;
  frame.link_seq = next_link_seq_++;
  frame.messages = std::move(queue_);
  queue_.clear();
  if (recorder_ != nullptr) {
    std::uint64_t payload = 0;
    for (const Message& m : frame.messages) payload += m.payload_size();
    trace_event(trace::EventKind::FrameEmit, frame.link_seq, 0, payload,
                static_cast<std::uint32_t>(frame.messages.size()));
  }

  // Stop-and-wait ARQ.  The sink's return value is the (implicit) ACK or
  // NACK; the waiting it stands for is charged in virtual time.  A
  // healthy link delivers on the first attempt and pays nothing here.
  std::size_t doublings = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    const SendOutcome out = sink(frame);
    if (out == SendOutcome::Delivered) return;
    if (attempt >= cfg_.max_retransmits) {
      throw ProtocolError(
          "link " + std::to_string(src_) + "->" + std::to_string(dst_) +
          " dead: frame " + std::to_string(frame.link_seq) +
          " undelivered after " + std::to_string(attempt + 1) + " attempts");
    }
    ++retransmits_;
    if (out == SendOutcome::Nacked) {
      // The receiver told us promptly; pay one control round trip.
      if (charge_) charge_(cfg_.nack_turnaround_ns);
      trace_event(trace::EventKind::NackTurnaround, frame.link_seq,
                  cfg_.nack_turnaround_ns, 0, 0);
    } else {
      // Silence: wait out the timer, backing off exponentially.
      const std::int64_t backoff = cfg_.retransmit_timeout_ns << doublings;
      if (charge_) charge_(backoff);
      trace_event(trace::EventKind::Retransmit, frame.link_seq, backoff, 0, 0);
      if (doublings < cfg_.max_backoff_doublings) ++doublings;
    }
  }
}

void Session::post(Message msg, const FrameSink& sink) {
  RMIOPT_CHECK(msg.header.source_machine == src_ &&
                   msg.header.dest_machine == dst_,
               "message posted to the wrong session");
  // A gathered payload must stop aliasing application memory before it can
  // sit in the coalescing queue or be retransmitted: seal (pin/fold the
  // borrowed spans) at the session boundary.  No-op when already sealed by
  // the runtime, and for contiguous payloads.
  msg.seal_gathered();
  std::scoped_lock lock(mu_);
  // The queue is emitted in posting order, so appending before deciding
  // whether to transmit preserves the per-link FIFO the inbox relies on.
  const bool hold = cfg_.batching() && coalescible(msg);
  const std::uint64_t payload = msg.payload_size();
  queue_.push_back(std::move(msg));
  if (hold && queue_.size() < cfg_.max_batch_messages) {
    trace_event(trace::EventKind::SessionEnqueue, next_link_seq_, 0, payload,
                static_cast<std::uint32_t>(queue_.size()));
    return;
  }
  seal_and_emit(sink);
}

void Session::flush(const FrameSink& sink) {
  std::scoped_lock lock(mu_);
  seal_and_emit(sink);
}

std::size_t Session::queued() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

std::uint64_t Session::retransmits() const {
  std::scoped_lock lock(mu_);
  return retransmits_;
}

void Session::set_trace(trace::Recorder* recorder,
                        std::function<std::int64_t()> now_ns) {
  std::scoped_lock lock(mu_);
  recorder_ = recorder;
  now_ns_ = std::move(now_ns);
}

}  // namespace rmiopt::wire
