#include "wire/session.hpp"

#include "support/error.hpp"

namespace rmiopt::wire {

bool Session::coalescible(const Message& msg) const {
  return msg.header.kind != MsgKind::Call &&
         msg.payload.size() <= cfg_.max_batch_payload;
}

void Session::seal_and_emit(const FrameSink& sink) {
  if (queue_.empty()) return;
  Frame frame;
  frame.link_seq = next_link_seq_++;
  frame.messages = std::move(queue_);
  queue_.clear();
  sink(std::move(frame));
}

void Session::post(Message msg, const FrameSink& sink) {
  RMIOPT_CHECK(msg.header.source_machine == src_ &&
                   msg.header.dest_machine == dst_,
               "message posted to the wrong session");
  std::scoped_lock lock(mu_);
  // The queue is emitted in posting order, so appending before deciding
  // whether to transmit preserves the per-link FIFO the inbox relies on.
  const bool hold = cfg_.batching() && coalescible(msg);
  queue_.push_back(std::move(msg));
  if (hold && queue_.size() < cfg_.max_batch_messages) return;
  seal_and_emit(sink);
}

void Session::flush(const FrameSink& sink) {
  std::scoped_lock lock(mu_);
  seal_and_emit(sink);
}

std::size_t Session::queued() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

}  // namespace rmiopt::wire
